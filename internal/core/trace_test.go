package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/stm"
	"repro/internal/syncx"
)

func traceCounts(tr *obs.Tracer) map[obs.EventType]int {
	m := make(map[obs.EventType]int)
	for _, ev := range tr.Events() {
		m[ev.Type]++
	}
	return m
}

// Provocation: a NotifyOne inside a transaction that ABORTS must leave no
// cv.notify/cv.sempost in the trace and wake nobody — the aborted
// attempt's events are discarded exactly like the paper defers (and
// discards) its SEMPOST. Then a committed notify produces the full
// enqueue → notify → sempost → wake chain, in the exported Chrome trace
// too, and populates the split wait-latency histograms.
func TestTraceAbortedNotifyLeavesNoEvents(t *testing.T) {
	e := stm.NewEngine(stm.Config{Algorithm: stm.AlgWriteThrough})
	tr := obs.NewTracer(4096)
	e.SetTracer(tr)
	tr.Enable()
	st := &CVStats{}
	cv := New(e, Options{})
	cv.SetStats(st)

	var m syncx.Mutex
	done := make(chan struct{})
	go func() {
		m.Lock()
		cv.WaitLocked(&m)
		m.Unlock()
		close(done)
	}()
	for cv.Len() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond) // let the waiter park

	// The provocation: dequeue the waiter, then abort the transaction.
	sentinel := errors.New("provoked abort")
	err := e.Atomic(func(tx *stm.Tx) {
		if !cv.NotifyOne(tx) {
			t.Error("NotifyOne found no waiter")
		}
		tx.Cancel(sentinel)
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Atomic err = %v", err)
	}

	// The abort rolled the dequeue back: waiter still enqueued, not woken,
	// and the trace shows no notify-side events.
	if n := cv.Len(); n != 1 {
		t.Fatalf("after aborted notify: Len = %d, want 1", n)
	}
	if cv.Depth() != 1 {
		t.Fatalf("after aborted notify: Depth = %d, want 1", cv.Depth())
	}
	select {
	case <-done:
		t.Fatal("waiter woke from an aborted notify")
	default:
	}
	got := traceCounts(tr)
	if got[obs.EvCVNotify] != 0 || got[obs.EvCVSemPost] != 0 || got[obs.EvCVWake] != 0 {
		t.Fatalf("aborted notify leaked events: %v", got)
	}
	// The causal wake-flow events (DESIGN.md §15) obey the same
	// discipline: the wakeID is minted in the commit handler, so an
	// aborted notify never starts a flow.
	if got[obs.EvWakeRoot] != 0 || got[obs.EvWakeHop] != 0 || got[obs.EvWakeEnd] != 0 {
		t.Fatalf("aborted notify leaked wake-flow events: %v", got)
	}
	if got[obs.EvTxnAbort] == 0 {
		t.Fatal("aborted attempt left no terminal txn.abort event")
	}

	// Now commit the notify for real.
	e.MustAtomic(func(tx *stm.Tx) {
		if !cv.NotifyOne(tx) {
			t.Error("committed NotifyOne found no waiter")
		}
	})
	<-done
	tr.Disable()

	got = traceCounts(tr)
	for _, want := range []obs.EventType{obs.EvCVEnqueue, obs.EvCVNotify, obs.EvCVSemPost, obs.EvCVWake} {
		if got[want] != 1 {
			t.Errorf("%s count = %d, want 1 (all: %v)", want, got[want], got)
		}
	}
	// The committed notify minted exactly one wake flow: one root (the
	// commit handler), one notifier-posted hop, one consume by a live
	// waiter — all carrying the same non-zero wakeID.
	for _, want := range []obs.EventType{obs.EvWakeRoot, obs.EvWakeHop, obs.EvWakeEnd} {
		if got[want] != 1 {
			t.Errorf("%s count = %d, want 1 (all: %v)", want, got[want], got)
		}
	}
	var flowID uint64
	for _, ev := range tr.Events() {
		switch ev.Type {
		case obs.EvWakeRoot, obs.EvWakeHop, obs.EvWakeEnd:
			if ev.Flow == 0 {
				t.Errorf("%s carries zero flow id", ev.Type)
			}
			if flowID == 0 {
				flowID = ev.Flow
			} else if ev.Flow != flowID {
				t.Errorf("%s flow %d != first flow %d", ev.Type, ev.Flow, flowID)
			}
			if ev.Type == obs.EvWakeHop && (ev.A != 0 || ev.B != 0) {
				t.Errorf("single notify hop: parent %d hop %d, want notifier-posted (0, 0)", ev.A, ev.B)
			}
			if ev.Type == obs.EvWakeEnd && ev.B != obs.WakeByWaiter {
				t.Errorf("consume by %s, want waiter", obs.WakeConsumerName(ev.B))
			}
		}
	}
	if cv.Depth() != 0 {
		t.Errorf("final Depth = %d, want 0", cv.Depth())
	}

	// The exported Chrome trace reflects the same discipline: exactly one
	// committed notify chain, nothing from the aborted attempt.
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	names := map[string]int{}
	for _, ev := range doc.TraceEvents {
		names[ev.Name]++
	}
	if names["cv.notify"] != 1 || names["cv.sempost"] != 1 {
		t.Errorf("exported trace notify chain = %v", names)
	}

	// The split wait-latency histograms populated: enqueue→notify on the
	// notifier's commit, notify→wake on the waiter's resume.
	h := st.Histograms()
	if h["enqueue_to_notify_ns"].Count != 1 {
		t.Errorf("enqueue_to_notify_ns count = %d, want 1", h["enqueue_to_notify_ns"].Count)
	}
	if h["notify_to_wake_ns"].Count != 1 {
		t.Errorf("notify_to_wake_ns count = %d, want 1", h["notify_to_wake_ns"].Count)
	}
	if h["queue_depth"].Count != 1 || h["queue_depth"].Max != 1 {
		t.Errorf("queue_depth = %+v, want one observation of depth 1", h["queue_depth"])
	}
	if h["sem_park_ns"].Count != 1 {
		t.Errorf("sem_park_ns count = %d, want 1 (waiter parked once)", h["sem_park_ns"].Count)
	}
	// waits and sem_posts are committed-side counters and must be exact;
	// notify_ones/woken count calls (the aborted NotifyOne included), so
	// they are not asserted here.
	snap := st.Snapshot()
	if snap["waits"] != 1 || snap["sem_posts"] != 1 {
		t.Errorf("snapshot = %v", snap)
	}
	if snap["wake_consumed_waiter"] != 1 || snap["wake_consumed_timeout"] != 0 || snap["wake_consumed_cancel"] != 0 {
		t.Errorf("wake consumer attribution = %v", snap)
	}
	if h["wake_chain_depth"].Count != 1 || h["wake_chain_depth"].Max != 1 {
		t.Errorf("wake_chain_depth = %+v, want one observation of depth 1", h["wake_chain_depth"])
	}
}

// The committed depth gauge follows enqueues, notifies and timeout
// unlinks, and ignores aborted transactions.
func TestDepthGauge(t *testing.T) {
	e := stm.NewEngine(stm.Config{Algorithm: stm.AlgWriteThrough})
	cv := New(e, Options{})

	var m syncx.Mutex
	m.Lock()
	ok := cv.WaitLockedTimeout(&m, 20*time.Millisecond)
	m.Unlock()
	if ok {
		t.Fatal("timed wait reported notified with no notifier")
	}
	if cv.Depth() != 0 {
		t.Fatalf("Depth after timeout unlink = %d, want 0", cv.Depth())
	}
}

// CVStats.Snapshot and Histograms must expose every documented key, so the
// harness JSON schema is stable.
func TestCVStatsKeys(t *testing.T) {
	st := &CVStats{}
	snap := st.Snapshot()
	for _, k := range []string{"waits", "notify_ones", "notify_alls", "notify_empty", "woken", "timeouts", "max_queue", "sem_posts", "sem_blocks"} {
		if _, ok := snap[k]; !ok {
			t.Errorf("Snapshot missing %q (have %s)", k, strings.Join(keysOf(snap), ","))
		}
	}
	h := st.Histograms()
	for _, k := range []string{"enqueue_to_notify_ns", "notify_to_wake_ns", "queue_depth", "sem_park_ns"} {
		if _, ok := h[k]; !ok {
			t.Errorf("Histograms missing %q", k)
		}
	}
}

func keysOf(m map[string]int64) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
