package core

import "testing"

// TestModelMixes exhaustively model-checks Algorithm 2 for a spectrum of
// thread mixes. Each run verifies the Lemma 2 invariants in every
// reachable state, Definition 1's return-value property at every
// WaitStep2, and the absence of lost wake-ups in terminal states.
func TestModelMixes(t *testing.T) {
	mixes := []struct {
		name  string
		roles []Role
	}{
		{"1w_1n1", []Role{RoleWaiter, RoleNotifyOne}},
		{"2w_1n1", []Role{RoleWaiter, RoleWaiter, RoleNotifyOne}},
		{"1w_1nall", []Role{RoleWaiter, RoleNotifyAll}},
		{"2w_1nall", []Role{RoleWaiter, RoleWaiter, RoleNotifyAll}},
		{"2w_2n1", []Role{RoleWaiter, RoleWaiter, RoleNotifyOne, RoleNotifyOne}},
		{"2w_1n1_1nall", []Role{RoleWaiter, RoleWaiter, RoleNotifyOne, RoleNotifyAll}},
		{"3w_1n1_1nall", []Role{RoleWaiter, RoleWaiter, RoleWaiter, RoleNotifyOne, RoleNotifyAll}},
		{"3w_2n1", []Role{RoleWaiter, RoleWaiter, RoleWaiter, RoleNotifyOne, RoleNotifyOne}},
		{"2w_2nall", []Role{RoleWaiter, RoleWaiter, RoleNotifyAll, RoleNotifyAll}},
		{"only_waiters", []Role{RoleWaiter, RoleWaiter}},
		{"only_notifiers", []Role{RoleNotifyOne, RoleNotifyAll}},
	}
	for _, m := range mixes {
		m := m
		t.Run(m.name, func(t *testing.T) {
			res, err := CheckModel(m.roles)
			if err != nil {
				t.Fatalf("model violation: %v (after %d states)", err, res.States)
			}
			if res.States == 0 {
				t.Fatal("explored no states")
			}
			t.Logf("states=%d transitions=%d terminals=%d", res.States, res.Transitions, res.Terminals)
		})
	}
}

func TestModelRejectsTooManyThreads(t *testing.T) {
	roles := make([]Role, modelMaxThreads+1)
	if _, err := CheckModel(roles); err == nil {
		t.Fatal("expected error for oversized thread mix")
	}
}

func TestRoleString(t *testing.T) {
	if RoleWaiter.String() != "waiter" || RoleNotifyOne.String() != "notifyOne" ||
		RoleNotifyAll.String() != "notifyAll" || Role(99).String() != "?" {
		t.Fatal("Role.String mismatch")
	}
}
