package core

import (
	"fmt"
	"sync"
)

// HistoryChecker records condition-variable events at runtime and checks
// the legality conditions of Definition 1 plus the pairing properties the
// implementation guarantees:
//
//  1. Every completed wait is matched to exactly one notify-permit (no
//     spurious wake-ups: wakes never exceed notified waiters).
//  2. At quiescence, wakes equal exactly the number of waiters the
//     notifies removed (no lost wake-ups among notified waiters).
//
// It is driven by tests: wrap each operation with the corresponding
// Record* call. The checker is deliberately coarse — it counts permits,
// not identities — which is exactly what Mesa-style semantics promise.
//
// The fail-fast check in RecordWaitDone is only sound if the caller
// records causally: a notify must be recorded before any waiter it woke
// can record its wake. Under a monitor the cheap way to pin that order
// is to call RecordNotify while still holding the monitor mutex — the
// woken waiter cannot return from WAIT (and thus cannot reach its
// RecordWaitDone) until it re-acquires that mutex.
type HistoryChecker struct {
	mu        sync.Mutex
	waitStart int64 // WAITs that have enqueued
	waitDone  int64 // WAITs that returned
	notified  int64 // waiters removed by NotifyOne/NotifyAll/NotifyBest
	events    []string
	keepLog   bool
}

// NewHistoryChecker returns an empty checker. If keepLog is set, a
// human-readable event log is retained for failure diagnostics.
func NewHistoryChecker(keepLog bool) *HistoryChecker {
	return &HistoryChecker{keepLog: keepLog}
}

// RecordWaitStart notes a waiter that has enqueued itself (completed
// WAITSTEP1).
func (h *HistoryChecker) RecordWaitStart(id int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.waitStart++
	h.log("waitStart %d", id)
}

// RecordWaitDone notes a waiter that returned from WAIT. It fails fast if
// the wake cannot be matched to a notify permit (a spurious wake-up).
func (h *HistoryChecker) RecordWaitDone(id int) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.waitDone++
	h.log("waitDone %d", id)
	if h.waitDone > h.notified {
		return fmt.Errorf("core: spurious wake-up — %d waits completed but only %d waiters were ever notified\n%s",
			h.waitDone, h.notified, h.dump())
	}
	return nil
}

// RecordNotify notes a notify operation that removed n waiters from the
// queue (0 for a notify that found it empty).
func (h *HistoryChecker) RecordNotify(n int) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.notified += int64(n)
	h.log("notify +%d", n)
	if h.notified > h.waitStart {
		return fmt.Errorf("core: notify removed %d waiters but only %d ever enqueued\n%s",
			h.notified, h.waitStart, h.dump())
	}
	return nil
}

// CheckQuiescent verifies the terminal balance: with no operation in
// flight, every notified waiter must have woken (no lost wake-ups) and no
// extra wake may exist.
func (h *HistoryChecker) CheckQuiescent() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.waitDone != h.notified {
		return fmt.Errorf("core: at quiescence %d waiters notified but %d woke\n%s",
			h.notified, h.waitDone, h.dump())
	}
	return nil
}

// Counts returns (started, completed, notified) for diagnostics.
func (h *HistoryChecker) Counts() (started, completed, notified int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.waitStart, h.waitDone, h.notified
}

func (h *HistoryChecker) log(format string, args ...any) {
	if h.keepLog {
		h.events = append(h.events, fmt.Sprintf(format, args...))
	}
}

func (h *HistoryChecker) dump() string {
	if !h.keepLog {
		return "(event log disabled)"
	}
	out := ""
	start := 0
	if len(h.events) > 200 {
		start = len(h.events) - 200
		out = fmt.Sprintf("... (%d earlier events)\n", start)
	}
	for _, e := range h.events[start:] {
		out += e + "\n"
	}
	return out
}
