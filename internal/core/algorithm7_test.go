package core

import (
	"testing"
	"time"

	"repro/internal/stm"
	"repro/internal/syncx"
)

// TestAlgorithm7Example reproduces the paper's Algorithm 7 end to end: a
// function-local `outer`, a transaction-local `inner`, a mid-transaction
// call that may WAIT, and an abort after the wait — checking that the
// checkpointing machinery (stm.Saved here; ad-hoc undo-log checkpoints in
// the paper's C++ runtime) restores the locals for the continuation's
// re-execution.
//
//	procedure EXAMPLE(param)
//	 1  stackvar outer ← F1(param)
//	 2  BEGIN TRANSACTION
//	 3    txnvar inner ← F1(outer)
//	 4    outer ← F1(outer)
//	 5    inner ← F2(outer, inner)
//	 6    MAYINVOKEWAIT(outer, inner)
//	 7    outer ← F1(outer)
//	 8    inner ← F1(inner)      // abort happens here
//	 9    outer ← F2(outer, inner)
//	10  END TRANSACTION
//	11  F1(outer)
func TestAlgorithm7Example(t *testing.T) {
	f1 := func(x int) int { return x*3 + 1 }
	f2 := func(a, b int) int { return a + b }

	e := stm.NewEngine(stm.Config{})
	cv := New(e, Options{})
	shared := stm.NewVar(e, 0)

	const param = 2
	outer := f1(param) // line 1

	result := make(chan int, 1)
	go func() {
		attempts := 0
		e.MustAtomic(func(tx *stm.Tx) { // line 2
			attempts++
			// The checkpoints the paper's §4.2 derives: outer is
			// neither shared nor transaction-local; inner is
			// transaction-local but lives across the punctuation point
			// in the closure's frame. Both must be restored on abort.
			stm.Saved(tx, &outer)
			inner := f1(outer)       // line 3
			outer = f1(outer)        // line 4
			inner = f2(outer, inner) // line 5

			// MAYINVOKEWAIT: waits iff the shared flag is not yet set —
			// on attempt 1 it waits; the continuation then re-enters
			// here via retry after the forced abort below.
			if stm.Read(tx, shared) == 0 {
				s := syncx.NewTxnSync(tx)
				cv.Wait(s, func(cont syncx.Sync) { // lines 11–13 of WAIT
					ctx := cont.Tx()
					// Continuation body = lines 7–9 of EXAMPLE, with a
					// forced abort on its first execution (line 8).
					stm.Saved(ctx, &outer)
					stm.Saved(ctx, &inner)
					outer = f1(outer) // line 7
					inner = f1(inner) // line 8: abort on first run
					if ctx.Attempt() == 0 {
						ctx.Restart()
					}
					outer = f2(outer, inner) // line 9
				})
				result <- outer // line 11 (post-continuation value)
				return
			}
			t.Error("flag already set before the wait — test sequencing broken")
		})
		_ = attempts
	}()

	// Let the waiter park, then satisfy its condition and notify.
	deadline := time.Now().Add(10 * time.Second)
	for cv.Len() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never parked")
		}
		time.Sleep(time.Millisecond)
	}
	e.MustAtomic(func(tx *stm.Tx) {
		stm.Write(tx, shared, 1)
		cv.NotifyOne(tx)
	})

	// Expected value: compute the straight-line execution with each line
	// running EXACTLY once (the aborted first run of the continuation
	// must leave no trace thanks to the checkpoints).
	wantOuter := f1(param)               // line 1
	wantInner := f1(wantOuter)           // line 3
	wantOuter = f1(wantOuter)            // line 4
	wantInner = f2(wantOuter, wantInner) // line 5
	wantOuter = f1(wantOuter)            // line 7
	wantInner = f1(wantInner)            // line 8
	wantOuter = f2(wantOuter, wantInner) // line 9

	select {
	case got := <-result:
		if got != wantOuter {
			t.Fatalf("outer = %d, want %d (checkpoint restoration leaked an aborted run)", got, wantOuter)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("EXAMPLE never completed")
	}
}
