#!/bin/sh
# verify.sh — the repository's full verification gate. Everything here is
# hermetic (toolchain only, nothing beyond loopback): build, vet, the
# test suite under the race detector, a second stm/core pass with the
# runtime sanitizer compiled on (-tags stmsan), the cvlint static misuse
# analyzers over the whole module, two bounded exhaustive model-checking
# runs, a causal wake-trace gate (the chaos soak dumps its event ring and
# cvtrace -check revalidates every wake DAG offline), and a
# live-introspection smoke gate that scrapes the /debug/cv/* endpoints
# during a chaos soak.
#
# Tier-1 (the subset CI must keep green) is `go build ./... && go test
# ./...`; this script is the superset to run before merging.
#
# `./verify.sh -short` skips the time-heavy black-box/crash gates (the
# blackbox oracle soak, the injected-bug negative gate, the SIGKILL
# crash round and the regression-seed replay) for a quick pre-push run.
set -eu

SHORT=0
[ "${1:-}" = "-short" ] && SHORT=1

step() { printf '\n== %s\n' "$*"; }

step "build"
go build ./...

step "vet"
go vet ./...

step "tests (race detector)"
go test -race ./...

step "tests (multicore: GOMAXPROCS=4 race re-run of the wake/commit fabric)"
# The striped sem lanes, the epoch-batched commit clock and the condvar
# wake path all branch on GOMAXPROCS (lane count, scatter, spin budget),
# so a single-core host silently skips their multicore schedules. Re-run
# the three fabric packages with four Ps forced — the race detector sees
# the cross-lane and cross-shard interleavings even when the host has
# one CPU.
GOMAXPROCS=4 go test -race ./internal/sem ./internal/core ./internal/stm

step "tests (runtime sanitizer on: -tags stmsan)"
go test -tags stmsan ./internal/stm ./internal/core

step "cvlint (static misuse analyzers)"
# Production code must be clean outright. Test files run against a
# committed baseline: the recorded findings are deliberate misuse
# constructions (tests that exercise the hazards themselves); anything
# NEW in a _test.go file still fails the gate. Regenerate after a
# reviewed change with:
#   go run ./cmd/cvlint -tests -write-baseline lint-tests.baseline ./...
go run ./cmd/cvlint ./...
go run ./cmd/cvlint -tests -baseline lint-tests.baseline ./...

step "tracer overhead guard (disabled path must not allocate)"
go test -run 'TestTraceDisabledNoAlloc|TestTraceEnabledNoAlloc|TestEmitFlowNoAlloc|TestHistogramObserveNoAlloc|TestParkLabelGateNoAlloc' ./internal/obs
go test -run 'NoAlloc' ./internal/obs/registry
go test -run 'TestProfilingDisabledNoAllocCommit|TestAbortPathAllocParity' ./internal/stm
# The wake-chain stamps (wakeID mint + hop stores + consumer attribution)
# ride the notify→post→wake hot path unconditionally; with the tracer
# disarmed the whole cycle must stay allocation-free, bounding the
# chain-tracing overhead on BenchmarkBroadcastWake to the atomic stores.
go test -run 'TestWakeChainDisarmedNoAlloc' ./internal/core
# The pooled park path: a Wait that parks and is woken must recycle its
# waiter node and channel — 0 allocs/op once the pool is warm. Must run
# race-free: race shadow state adds a deterministic allocation per park
# (the test skips itself under -race, so this line is the real gate).
go test -run 'TestWaitPooledNoAlloc' ./internal/sem
go test -run '^$' -bench BenchmarkTraceDisabled -benchmem ./internal/obs | tee /tmp/obs_bench.$$ >/dev/null
grep -q ' 0 allocs/op' /tmp/obs_bench.$$ || {
	echo "BenchmarkTraceDisabled allocates:"; cat /tmp/obs_bench.$$; rm -f /tmp/obs_bench.$$; exit 1;
}
rm -f /tmp/obs_bench.$$

step "broadcast wake smoke (chained hand-off batch over 64+ waiters)"
# Fixed iteration count, not time-gated: the guard is that a wide
# NotifyAll batch completes and every waiter resumes (the benchmark
# b.Fatals on a short wake count), not a host-dependent latency bar.
go test -run '^$' -bench 'BenchmarkBroadcastWake/w64' -benchtime 5x .
go test -run '^$' -bench 'BenchmarkSemBatchPost' -benchtime 5x .

step "modelcheck (bounded exhaustive interleavings)"
go run ./cmd/modelcheck -waiters 2 -notifyone 1
go run ./cmd/modelcheck -waiters 2 -notifyall 1

step "chaos soak (deterministic fault injection, fixed seed)"
go test -race ./internal/fault
# The soak doubles as the causal wake-trace gate: -trace dumps the run's
# event ring (and fails the run on any in-run wake-chain violation), then
# cvtrace -check revalidates the dump offline — every committed notify's
# wake DAG must reconstruct with no orphan hops (window-truncated flows
# whose root predates the ring are skipped, not failed).
go run ./cmd/cvstress -mode chaos -seed 3405691582 -faultrate 0.25 -duration 2s \
	-trace /tmp/chaos_trace.$$
go run ./cmd/cvtrace -check /tmp/chaos_trace.$$
rm -f /tmp/chaos_trace.$$

if [ "$SHORT" -eq 0 ]; then
	# The blackbox gates need the real exit code (go run collapses every
	# failure to 1), so build the binary once and run it directly.
	CVSTRESS=/tmp/cvstress_bb.$$
	go build -o "$CVSTRESS" ./cmd/cvstress

	step "blackbox oracle gate (expected-state shadowing, fixed seed)"
	"$CVSTRESS" -mode blackbox -seed 3405691582 -faultrate 0.25 -duration 4s -goroutines 8

	step "blackbox negative gate (injected lost-wakeup bug must be caught)"
	# The harness's own detector is gated here: -buglostwake wakes each
	# broadcast round one waiter short, and the run MUST exit 2 with the
	# stranded waiter named. A passing run means the oracle went blind.
	set +e
	"$CVSTRESS" -mode blackbox -seed 3405691582 -faultrate 0 \
		-duration 200ms -goroutines 4 -buglostwake >/tmp/bb_neg.$$ 2>&1
	rc=$?
	set -e
	[ "$rc" -eq 2 ] || {
		echo "negative gate: expected exit 2 (invariant violation), got $rc:"
		cat /tmp/bb_neg.$$; rm -f /tmp/bb_neg.$$ "$CVSTRESS"; exit 1;
	}
	grep -q 'cond.lost-wakeup' /tmp/bb_neg.$$ || {
		echo "negative gate: lost wakeup not named:"; cat /tmp/bb_neg.$$
		rm -f /tmp/bb_neg.$$ "$CVSTRESS"; exit 1;
	}
	rm -f /tmp/bb_neg.$$

	step "crash round (SIGKILL under load; oracle recovery must be clean)"
	go run ./cmd/crashtest -rounds 1 -seed 3405691582 -bin "$CVSTRESS"

	step "regression seeds (replay recorded past-failure seeds)"
	go test -run TestRegressionSeeds ./cmd/cvstress
	rm -f "$CVSTRESS"
else
	step "skipping blackbox/crash gates (-short)"
fi

step "introspection smoke (live /debug/cv/* endpoints during a chaos run)"
# Start a chaos soak with the introspection server on an ephemeral port,
# scrape it while the workload runs, and validate every endpoint's
# format with cvtop -check (Prometheus exposition + JSON shapes).
ISPORT=39217
go run ./cmd/cvstress -mode chaos -seed 3405691582 -faultrate 0.25 -duration 4s \
	-introspect "127.0.0.1:$ISPORT" >/tmp/cvstress_is.$$ 2>&1 &
ISPID=$!
ISADDR="127.0.0.1:$ISPORT"
# Wait for the listener, then give the workload a beat to register sources.
i=0
until curl -fsS "http://$ISADDR/debug/cv/vars" >/dev/null 2>&1; do
	i=$((i + 1))
	[ $i -lt 50 ] || { echo "introspection endpoint never came up"; cat /tmp/cvstress_is.$$; exit 1; }
	sleep 0.1
done
sleep 0.5
curl -fsS "http://$ISADDR/debug/cv/metrics" >/tmp/is_metrics.$$
grep -q '^stm_commits_total{' /tmp/is_metrics.$$ || {
	echo "live metrics missing stm_commits_total:"; cat /tmp/is_metrics.$$; exit 1;
}
grep -q '^cv_queue_depth{' /tmp/is_metrics.$$ || {
	echo "live metrics missing cv_queue_depth:"; cat /tmp/is_metrics.$$; exit 1;
}
grep -q '^cv_wake_consumed_total{' /tmp/is_metrics.$$ || {
	echo "live metrics missing cv_wake_consumed_total:"; cat /tmp/is_metrics.$$; exit 1;
}
curl -fsS "http://$ISADDR/debug/cv/waiters" | grep -q '"generated_at"' || {
	echo "waiters endpoint malformed"; exit 1;
}
# Attribution smoke: the chaos workload hammers a Var named chaos.hot
# (and auto-enables stm profiling), so the conflicts table must rank it.
curl -fsS "http://$ISADDR/debug/cv/conflicts" >/tmp/is_conflicts.$$
grep -q '"chaos.hot"' /tmp/is_conflicts.$$ || {
	echo "conflicts endpoint missing the known-hot Var chaos.hot:"; cat /tmp/is_conflicts.$$; exit 1;
}
grep -q '"profiling_on": true' /tmp/is_conflicts.$$ || {
	echo "conflicts endpoint reports profiling off during chaos:"; cat /tmp/is_conflicts.$$; exit 1;
}
rm -f /tmp/is_conflicts.$$
go run ./cmd/cvtop -addr "$ISADDR" -check
wait $ISPID || { echo "instrumented chaos soak failed:"; cat /tmp/cvstress_is.$$; exit 1; }
rm -f /tmp/is_metrics.$$ /tmp/cvstress_is.$$

step "benchmark trajectory (schema check over committed BENCH files)"
# Every committed BENCH_*.json at the repo root must load and validate
# against the current schema; benchdiff compares any two of them. (The
# sweep itself is not re-run here — results are host-dependent and
# archived deliberately; see results/README.md.)
go run ./cmd/benchdiff -check BENCH_*.json

step "ok"
