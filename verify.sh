#!/bin/sh
# verify.sh — the repository's full verification gate. Everything here is
# hermetic (toolchain only, no network): build, vet, the test suite under
# the race detector, a second stm/core pass with the runtime sanitizer
# compiled on (-tags stmsan), the cvlint static misuse analyzers over the
# whole module, and two bounded exhaustive model-checking runs.
#
# Tier-1 (the subset CI must keep green) is `go build ./... && go test
# ./...`; this script is the superset to run before merging.
set -eu

step() { printf '\n== %s\n' "$*"; }

step "build"
go build ./...

step "vet"
go vet ./...

step "tests (race detector)"
go test -race ./...

step "tests (runtime sanitizer on: -tags stmsan)"
go test -tags stmsan ./internal/stm ./internal/core

step "cvlint (static misuse analyzers)"
go run ./cmd/cvlint ./...
go run ./cmd/cvlint ./internal/obs

step "tracer overhead guard (disabled path must not allocate)"
go test -run 'TestTraceDisabledNoAlloc|TestTraceEnabledNoAlloc|TestHistogramObserveNoAlloc' ./internal/obs
go test -run '^$' -bench BenchmarkTraceDisabled -benchmem ./internal/obs | tee /tmp/obs_bench.$$ >/dev/null
grep -q ' 0 allocs/op' /tmp/obs_bench.$$ || {
	echo "BenchmarkTraceDisabled allocates:"; cat /tmp/obs_bench.$$; rm -f /tmp/obs_bench.$$; exit 1;
}
rm -f /tmp/obs_bench.$$

step "modelcheck (bounded exhaustive interleavings)"
go run ./cmd/modelcheck -waiters 2 -notifyone 1
go run ./cmd/modelcheck -waiters 2 -notifyall 1

step "chaos soak (deterministic fault injection, fixed seed)"
go test -race ./internal/fault
go run ./cmd/cvstress -mode chaos -seed 3405691582 -faultrate 0.25 -duration 2s

step "ok"
