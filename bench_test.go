package repro

// Benchmarks regenerating the paper's evaluation artifacts, one family per
// table/figure, plus the ablations DESIGN.md calls out.
//
//	BenchmarkTable1   — Table 1 (static sync characteristics; verified)
//	BenchmarkFig1_*   — Figure 1 (a–h): the 8 PARSEC workloads × 3 systems
//	                    on the STM machine ("Westmere")
//	BenchmarkFig2_*   — Figure 2 (a–h): the same on simulated HTM ("Haswell")
//	BenchmarkFig3     — Figure 3: geometric-mean speedups vs baseline
//	BenchmarkAblation*— design-choice ablations
//
// Absolute times are host-dependent; the paper-comparable quantities are
// the RATIOS between systems at equal thread counts (see EXPERIMENTS.md).

import (
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/birrellcv"
	"repro/internal/core"
	"repro/internal/facility"
	"repro/internal/harness"
	"repro/internal/parsec"
	"repro/internal/pthreadcv"
	"repro/internal/sem"
	"repro/internal/stm"
	"repro/internal/syncx"
)

// benchScale keeps `go test -bench=.` affordable; cmd/parsecbench defaults
// to scale 1.0 for the full-size runs.
const benchScale = 0.5

var benchThreads = []int{1, 2, 4}

func benchFigure(b *testing.B, machine parsec.Machine, name string) {
	bench, err := parsec.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	for _, sys := range facility.Kinds {
		for _, th := range bench.Threads(benchThreads[len(benchThreads)-1]) {
			ok := false
			for _, want := range benchThreads {
				if th == want {
					ok = true
				}
			}
			if !ok {
				continue
			}
			b.Run(sys.Short()+"/t"+strconv.Itoa(th), func(b *testing.B) {
				cfg := parsec.Config{Threads: th, System: sys, Machine: machine, Scale: benchScale}
				var check uint64
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res := bench.Run(cfg)
					if check == 0 {
						check = res.Checksum
					} else if check != res.Checksum {
						b.Fatalf("nondeterministic checksum: %#x vs %#x", check, res.Checksum)
					}
				}
			})
		}
	}
}

// ---- Table 1 ----

func BenchmarkTable1(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < b.N; i++ {
		sb.Reset()
		harness.WriteTable1(&sb, parsec.All())
		if !strings.Contains(sb.String(), "| 65") {
			b.Fatal("Table 1 paper totals corrupted")
		}
	}
}

// ---- Figure 1: Westmere (software TM) ----

func BenchmarkFig1_facesim(b *testing.B)       { benchFigure(b, parsec.Westmere, "facesim") }
func BenchmarkFig1_ferret(b *testing.B)        { benchFigure(b, parsec.Westmere, "ferret") }
func BenchmarkFig1_fluidanimate(b *testing.B)  { benchFigure(b, parsec.Westmere, "fluidanimate") }
func BenchmarkFig1_streamcluster(b *testing.B) { benchFigure(b, parsec.Westmere, "streamcluster") }
func BenchmarkFig1_bodytrack(b *testing.B)     { benchFigure(b, parsec.Westmere, "bodytrack") }
func BenchmarkFig1_x264(b *testing.B)          { benchFigure(b, parsec.Westmere, "x264") }
func BenchmarkFig1_raytrace(b *testing.B)      { benchFigure(b, parsec.Westmere, "raytrace") }
func BenchmarkFig1_dedup(b *testing.B)         { benchFigure(b, parsec.Westmere, "dedup") }

// ---- Figure 2: Haswell (simulated HTM) ----

func BenchmarkFig2_facesim(b *testing.B)       { benchFigure(b, parsec.Haswell, "facesim") }
func BenchmarkFig2_ferret(b *testing.B)        { benchFigure(b, parsec.Haswell, "ferret") }
func BenchmarkFig2_fluidanimate(b *testing.B)  { benchFigure(b, parsec.Haswell, "fluidanimate") }
func BenchmarkFig2_streamcluster(b *testing.B) { benchFigure(b, parsec.Haswell, "streamcluster") }
func BenchmarkFig2_bodytrack(b *testing.B)     { benchFigure(b, parsec.Haswell, "bodytrack") }
func BenchmarkFig2_x264(b *testing.B)          { benchFigure(b, parsec.Haswell, "x264") }
func BenchmarkFig2_raytrace(b *testing.B)      { benchFigure(b, parsec.Haswell, "raytrace") }
func BenchmarkFig2_dedup(b *testing.B)         { benchFigure(b, parsec.Haswell, "dedup") }

// ---- Figure 3: geometric-mean speedup vs pthread baseline ----

func benchFig3(b *testing.B, machine parsec.Machine) {
	for i := 0; i < b.N; i++ {
		sw := harness.Run(harness.SweepConfig{
			Machine:    machine,
			MaxThreads: 2,
			Trials:     1,
			Scale:      0.25,
		})
		gm := sw.Geomean()
		for _, sys := range facility.Kinds {
			if gm[sys] <= 0 {
				b.Fatalf("no geomean for %v", sys)
			}
		}
		if i == 0 {
			b.Logf("geomean speedups (%v): pthreadCV=%.3f TMCV=%.3f TMParsec=%.3f",
				machine, gm[facility.LockPthread], gm[facility.LockTM], gm[facility.Txn])
		}
	}
}

func BenchmarkFig3_Westmere(b *testing.B) { benchFig3(b, parsec.Westmere) }
func BenchmarkFig3_Haswell(b *testing.B)  { benchFig3(b, parsec.Haswell) }

// ---- Section 5.4: the dedup irrevocable-I/O anomaly in isolation ----

func BenchmarkDedupIrrevocable(b *testing.B) {
	bench, _ := parsec.ByName("dedup")
	for _, sys := range []facility.Kind{facility.LockTM, facility.Txn} {
		b.Run(sys.Short(), func(b *testing.B) {
			cfg := parsec.Config{Threads: 4, System: sys, Machine: parsec.Westmere, Scale: benchScale}
			for i := 0; i < b.N; i++ {
				bench.Run(cfg)
			}
		})
	}
}

// ---- Ablations ----

// condvarChurn is the ablation micro-workload: waiters and a notifier
// cycling through a condvar built with the given options on the given
// engine.
func condvarChurn(b *testing.B, e *stm.Engine, opts core.Options, fromTxn bool) {
	cv := core.New(e, opts)
	var m syncx.Mutex
	const waiters = 4
	stop := make(chan struct{})
	done := make(chan struct{}, waiters)
	for w := 0; w < waiters; w++ {
		go func() {
			for {
				select {
				case <-stop:
					done <- struct{}{}
					return
				default:
				}
				m.Lock()
				cv.WaitLocked(&m)
				m.Unlock()
			}
		}()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fromTxn {
			e.MustAtomic(func(tx *stm.Tx) { cv.NotifyOne(tx) })
		} else {
			cv.NotifyOne(nil)
		}
	}
	b.StopTimer()
	close(stop)
	// Keep waking until every worker has observed stop and exited.
	drained := 0
	for drained < waiters {
		cv.NotifyAll(nil)
		select {
		case <-done:
			drained++
		default:
		}
	}
}

// AblationSTMAlg: write-through (ml_wt) vs write-back (TL2) engines under
// identical condvar traffic.
func BenchmarkAblationSTMAlg(b *testing.B) {
	for _, alg := range []stm.Algorithm{stm.AlgWriteThrough, stm.AlgWriteBack, stm.AlgHTM} {
		b.Run(alg.String(), func(b *testing.B) {
			condvarChurn(b, stm.NewEngine(stm.Config{Algorithm: alg}), core.Options{}, true)
		})
	}
}

// AblationDeferredPost: commit-time SEMPOST (the paper's design) vs
// immediate post. Measured on the software engine; on HTM the immediate
// variant aborts every notifier transaction (see the core tests).
func BenchmarkAblationDeferredPost(b *testing.B) {
	for _, c := range []struct {
		name string
		opts core.Options
	}{
		{"deferred", core.Options{}},
		{"immediate", core.Options{ImmediatePost: true}},
	} {
		b.Run(c.name, func(b *testing.B) {
			condvarChurn(b, stm.NewEngine(stm.Config{}), c.opts, true)
		})
	}
}

// AblationPolicy: FIFO vs LIFO wake policy, plus NotifyBest traversal.
func BenchmarkAblationPolicy(b *testing.B) {
	b.Run("fifo", func(b *testing.B) {
		condvarChurn(b, stm.NewEngine(stm.Config{}), core.Options{Policy: core.FIFO}, false)
	})
	b.Run("lifo", func(b *testing.B) {
		condvarChurn(b, stm.NewEngine(stm.Config{}), core.Options{Policy: core.LIFO}, false)
	})
	b.Run("best", func(b *testing.B) {
		e := stm.NewEngine(stm.Config{})
		cv := core.New(e, core.Options{})
		var m syncx.Mutex
		const waiters = 4
		stop := make(chan struct{})
		done := make(chan struct{}, waiters)
		for w := 0; w < waiters; w++ {
			w := w
			go func() {
				for {
					select {
					case <-stop:
						done <- struct{}{}
						return
					default:
					}
					m.Lock()
					s := syncx.NewLockSync(&m)
					cv.WaitTagged(s, w, nil)
				}
			}()
		}
		score := func(tag any) int64 {
			if v, ok := tag.(int); ok {
				return int64(v)
			}
			return -1
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cv.NotifyBest(nil, score)
		}
		b.StopTimer()
		close(stop)
		drained := 0
		for drained < waiters {
			cv.NotifyAll(nil)
			select {
			case <-done:
				drained++
			default:
			}
		}
	})
}

// AblationEmptyCont: nil-continuation fast path (skip lock re-acquire) vs
// an empty but present continuation (full re-establishment).
func BenchmarkAblationEmptyCont(b *testing.B) {
	run := func(b *testing.B, cont func(syncx.Sync)) {
		e := stm.NewEngine(stm.Config{})
		cv := core.New(e, core.Options{})
		var m syncx.Mutex
		ready := make(chan struct{}, 1) // buffered: a wake is never lost
		stop := make(chan struct{})
		exited := make(chan struct{})
		go func() {
			defer close(exited)
			for {
				select {
				case <-stop:
					return
				default:
				}
				m.Lock()
				s := syncx.NewLockSync(&m)
				cv.Wait(s, cont)
				ready <- struct{}{}
			}
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for cv.Len() == 0 {
			}
			cv.NotifyOne(nil)
			<-ready
		}
		b.StopTimer()
		close(stop)
		// Wake the worker until it observes stop; drain stray handshakes.
		for {
			select {
			case <-exited:
				return
			case <-ready:
			default:
			}
			if cv.Len() > 0 {
				cv.NotifyOne(nil)
			}
		}
	}
	b.Run("nil-cont", func(b *testing.B) { run(b, nil) })
	b.Run("empty-cont", func(b *testing.B) { run(b, func(syncx.Sync) {}) })
}

// AblationOrecTable: ownership-record striping — a tiny table maximizes
// false conflicts (distinct Vars hashing to one orec), a large table
// eliminates them. The paper's "all transactions are small → no
// artificial conflicts" observation corresponds to the large-table case.
func BenchmarkAblationOrecTable(b *testing.B) {
	for _, size := range []int{1, 1 << 4, 1 << 14} {
		size := size
		b.Run("orecs-"+strconv.Itoa(size), func(b *testing.B) {
			e := stm.NewEngine(stm.Config{OrecCount: size})
			vars := make([]*stm.Var[int], 16)
			for i := range vars {
				vars[i] = stm.NewVar(e, 0)
			}
			stop := make(chan struct{})
			done := make(chan struct{})
			go func() {
				defer close(done)
				i := 0
				for {
					select {
					case <-stop:
						return
					default:
					}
					i++
					e.MustAtomic(func(tx *stm.Tx) {
						v := vars[i%8]
						stm.Write(tx, v, stm.Read(tx, v)+1)
					})
				}
			}()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v := vars[8+i%8] // disjoint vars: conflicts only via striping
				e.MustAtomic(func(tx *stm.Tx) {
					stm.Write(tx, v, stm.Read(tx, v)+1)
				})
			}
			b.StopTimer()
			close(stop)
			<-done
			b.ReportMetric(e.Stats.AbortRate(), "abort-rate")
		})
	}
}

// AblationNodePool: per-wait node pooling on vs off.
func BenchmarkAblationNodePool(b *testing.B) {
	b.Run("pooled", func(b *testing.B) {
		condvarChurn(b, stm.NewEngine(stm.Config{}), core.Options{}, false)
	})
	b.Run("unpooled", func(b *testing.B) {
		condvarChurn(b, stm.NewEngine(stm.Config{}), core.Options{NoNodePool: true}, false)
	})
}

// AblationRetryVsCondVar: the Section 6/7 comparison — a bounded buffer
// synchronized by Harris-style retry vs by condvar WaitTx re-check loops.
func BenchmarkAblationRetryVsCondVar(b *testing.B) {
	const capacity = 4
	b.Run("retry", func(b *testing.B) {
		e := stm.NewEngine(stm.Config{})
		buf := stm.NewVar(e, 0) // item count; contents don't matter here
		done := make(chan struct{})
		go func() {
			for i := 0; i < b.N; i++ {
				e.MustAtomic(func(tx *stm.Tx) {
					n := stm.Read(tx, buf)
					if n == 0 {
						stm.Retry(tx)
					}
					stm.Write(tx, buf, n-1)
				})
			}
			close(done)
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.MustAtomic(func(tx *stm.Tx) {
				n := stm.Read(tx, buf)
				if n >= capacity {
					stm.Retry(tx)
				}
				stm.Write(tx, buf, n+1)
			})
		}
		<-done
	})
	b.Run("condvar", func(b *testing.B) {
		e := stm.NewEngine(stm.Config{})
		buf := stm.NewVar(e, 0)
		notEmpty := core.New(e, core.Options{})
		notFull := core.New(e, core.Options{})
		done := make(chan struct{})
		go func() {
			for i := 0; i < b.N; i++ {
				for {
					ok := false
					e.MustAtomic(func(tx *stm.Tx) {
						ok = false
						n := stm.Read(tx, buf)
						if n == 0 {
							notEmpty.WaitTx(tx)
							return
						}
						stm.Write(tx, buf, n-1)
						notFull.NotifyOne(tx)
						ok = true
					})
					if ok {
						break
					}
				}
			}
			close(done)
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for {
				ok := false
				e.MustAtomic(func(tx *stm.Tx) {
					ok = false
					n := stm.Read(tx, buf)
					if n >= capacity {
						notFull.WaitTx(tx)
						return
					}
					stm.Write(tx, buf, n+1)
					notEmpty.NotifyOne(tx)
					ok = true
				})
				if ok {
					break
				}
			}
		}
		<-done
	})
}

// ---- Broadcast wake scalability: chained hand-off vs serial posting ----

// benchBroadcastWake parks `waiters` goroutines on one condvar behind a
// generation predicate, then broadcasts once per iteration. The
// paper-relevant number is broadcast-ns — the BroadcastNanos histogram's
// commit-to-last-waiter-resumed latency — compared between the chained
// hand-off wake path (default) and the -serialwake ablation, which posts
// every semaphore from the notifier's commit handler.
func benchBroadcastWake(b *testing.B, waiters int, opts core.Options) {
	e := stm.NewEngine(stm.Config{})
	cv := core.New(e, opts)
	st := &core.CVStats{}
	cv.SetStats(st)
	var m syncx.Mutex
	gen := 0 // protected by m; waiters sleep until it advances
	stopped := false
	arrived := make(chan struct{}, waiters)
	exited := make(chan struct{}, waiters)
	for w := 0; w < waiters; w++ {
		go func() {
			seen := 0
			for {
				m.Lock()
				for gen == seen && !stopped {
					cv.WaitLocked(&m)
				}
				if stopped {
					m.Unlock()
					exited <- struct{}{}
					return
				}
				seen = gen
				m.Unlock()
				arrived <- struct{}{}
			}
		}()
	}
	waitParked := func() {
		for cv.Len() < waiters {
			runtime.Gosched()
		}
	}
	waitParked()
	var notifyNS int64 // time the notifier spends inside NotifyAll itself
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Lock()
		gen++
		m.Unlock()
		t0 := time.Now()
		n := cv.NotifyAll(nil)
		notifyNS += time.Since(t0).Nanoseconds()
		if n != waiters {
			b.Fatalf("broadcast woke %d of %d waiters", n, waiters)
		}
		for k := 0; k < waiters; k++ {
			<-arrived
		}
		if i+1 < b.N {
			waitParked()
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(notifyNS)/float64(b.N), "notify-ns")
	if st.BroadcastNanos.Count() > 0 {
		b.ReportMetric(st.BroadcastNanos.Mean(), "broadcast-ns")
		b.ReportMetric(float64(st.BroadcastNanos.Max()), "broadcast-ns-max")
	}
	m.Lock()
	stopped = true
	m.Unlock()
	drained := 0
	for drained < waiters {
		cv.NotifyAll(nil)
		select {
		case <-exited:
			drained++
		default:
			runtime.Gosched()
		}
	}
}

func BenchmarkBroadcastWake(b *testing.B) {
	for _, waiters := range []int{64, 128} {
		for _, c := range []struct {
			name string
			opts core.Options
		}{
			{"serial", core.Options{SerialWake: true}},
			{"auto", core.Options{}},
			{"chained-f8", core.Options{WakeFanout: 8}},
			{"chained-f16", core.Options{WakeFanout: 16}},
		} {
			b.Run("w"+strconv.Itoa(waiters)+"/"+c.name, func(b *testing.B) {
				benchBroadcastWake(b, waiters, c.opts)
			})
		}
	}
}

// SemBatchPost: releasing k parked waiters with one PostN (single lock
// acquisition, chained hand-off) versus k serial Posts — the sem-layer
// half of the batched wake path.
func BenchmarkSemBatchPost(b *testing.B) {
	const k = 64
	run := func(b *testing.B, post func(s *sem.Sem)) {
		s := sem.New(0)
		stop := make(chan struct{})
		arrived := make(chan struct{}, k)
		var wg sync.WaitGroup
		wg.Add(k)
		for w := 0; w < k; w++ {
			go func() {
				defer wg.Done()
				for {
					s.Wait()
					select {
					case <-stop:
						return
					default:
					}
					arrived <- struct{}{}
				}
			}()
		}
		waitParked := func() {
			for s.Waiters() < k {
				runtime.Gosched()
			}
		}
		waitParked()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(s)
			for j := 0; j < k; j++ {
				<-arrived
			}
			if i+1 < b.N {
				waitParked()
			}
		}
		b.StopTimer()
		close(stop)
		s.PostN(k) // release the final generation so every worker exits
		wg.Wait()
	}
	b.Run("postn", func(b *testing.B) {
		run(b, func(s *sem.Sem) { s.PostN(k) })
	})
	b.Run("serial-post", func(b *testing.B) {
		run(b, func(s *sem.Sem) {
			for i := 0; i < k; i++ {
				s.Post()
			}
		})
	})
}

// ---- Micro: raw condvar primitive costs across the three lineages ----

func BenchmarkMicroSignalRoundTripTM(b *testing.B) {
	condvarChurn(b, stm.NewEngine(stm.Config{}), core.Options{}, false)
}

// MicroCondVarLineages: signal/wait round trips for the paper's condvar,
// the pthread-style baseline, and Birrell's semaphore construction — the
// three implementation lineages the paper's Sections 3.4 and 6 compare.
func BenchmarkMicroCondVarLineages(b *testing.B) {
	type cond interface {
		Wait(m *syncx.Mutex)
		Signal()
		Broadcast()
	}
	run := func(b *testing.B, c cond, waiters func() int) {
		var m syncx.Mutex
		stop := make(chan struct{})
		done := make(chan struct{}, 4)
		for w := 0; w < 4; w++ {
			go func() {
				for {
					select {
					case <-stop:
						done <- struct{}{}
						return
					default:
					}
					m.Lock()
					c.Wait(&m)
					m.Unlock()
				}
			}()
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Signal()
		}
		b.StopTimer()
		close(stop)
		drained := 0
		for drained < 4 {
			c.Broadcast()
			select {
			case <-done:
				drained++
			default:
			}
		}
	}
	b.Run("tmcondvar", func(b *testing.B) {
		lc := core.NewLockCond(core.New(stm.NewEngine(stm.Config{}), core.Options{}))
		run(b, lc, lc.Waiters)
	})
	b.Run("pthreadcv", func(b *testing.B) {
		c := pthreadcv.New(nil)
		run(b, c, c.Waiters)
	})
	b.Run("birrellcv", func(b *testing.B) {
		c := birrellcv.New()
		run(b, c, c.Waiters)
	})
}
