// Monitor: Hoare vs Mesa signal semantics, live. Section 3.4 of the paper
// traces condition-variable history from Hoare's monitors (signal hands
// the lock straight to the woken thread) through Mesa's relaxation (signal
// is a hint; re-check your predicate) — this example runs the same
// bounded-buffer protocol under both disciplines built on the
// transaction-friendly condvar, with Hoare's version using `if` where
// Mesa must use `for`.
//
//	go run ./examples/monitor
package main

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/monitor"
	"repro/internal/stm"
)

const (
	capacity = 2
	items    = 1000
)

func run(sem monitor.Semantics) time.Duration {
	m := monitor.New(stm.NewEngine(stm.Config{}), sem)
	notEmpty := m.NewCond()
	notFull := m.NewCond()
	var buf []int
	sum := 0

	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 1; i <= items; i++ {
			m.Enter()
			if sem == monitor.Hoare {
				if len(buf) == capacity {
					notFull.Wait() // Hoare: predicate guaranteed on return
				}
			} else {
				for len(buf) == capacity {
					notFull.Wait() // Mesa: must re-check
				}
			}
			buf = append(buf, i)
			notEmpty.Signal()
			m.Leave()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < items; i++ {
			m.Enter()
			if sem == monitor.Hoare {
				if len(buf) == 0 {
					notEmpty.Wait()
				}
			} else {
				for len(buf) == 0 {
					notEmpty.Wait()
				}
			}
			sum += buf[0]
			buf = buf[1:]
			notFull.Signal()
			m.Leave()
		}
	}()
	wg.Wait()
	if want := items * (items + 1) / 2; sum != want {
		panic(fmt.Sprintf("%v: sum %d != %d", sem, sum, want))
	}
	return time.Since(start)
}

func main() {
	dM := run(monitor.Mesa)
	fmt.Printf("mesa  (while-loop waits, hint signals):      %8v\n", dM.Round(time.Microsecond))
	dH := run(monitor.Hoare)
	fmt.Printf("hoare (if waits, lock hand-off + urgent q):  %8v\n", dH.Round(time.Microsecond))
	fmt.Println("both compute the same result; Hoare pays the hand-off, Mesa pays the re-checks —")
	fmt.Println("the trade-off Section 3.4 of the paper describes.")
}
