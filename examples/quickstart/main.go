// Quickstart: one transaction-friendly condition variable used from all
// three synchronization contexts the paper supports — lock-based critical
// sections, transactions, and unsynchronized ("naked") notifies.
//
// A bounded buffer is produced into by a transactional producer and
// consumed from by a lock-based consumer; a naked NotifyOne delivers the
// shutdown nudge. Run it:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stm"
	"repro/internal/syncx"
)

const (
	items    = 20
	capacity = 4
)

func main() {
	e := stm.NewEngine(stm.Config{}) // write-through STM, like GCC's ml_wt
	buf := stm.NewVar(e, []int{})    // the shared bounded buffer
	notEmpty := core.New(e, core.Options{})
	notFull := core.New(e, core.Options{})

	done := make(chan struct{})

	// Consumer: a classic lock-based critical section... except there is
	// no lock here at all — it drives the SAME condvar through the
	// manually-refactored transactional pattern. (See examples/barrier
	// for the pthread-compatible WaitLocked face.)
	go func() {
		defer close(done)
		sum := 0
		for got := 0; got < items; {
			consumed := false
			var x int
			e.MustAtomic(func(tx *stm.Tx) {
				consumed = false
				b := stm.Read(tx, buf)
				if len(b) == 0 {
					// Sleep until a producer commits an insert. The
					// enqueue + early commit + sleep are exactly
					// Algorithm 4; there are no spurious wake-ups.
					notEmpty.WaitTx(tx)
					return
				}
				x = b[0]
				stm.Write(tx, buf, b[1:])
				notFull.NotifyOne(tx) // fires only if this txn commits
				consumed = true
			})
			if consumed {
				sum += x
				got++
			}
		}
		fmt.Printf("consumer: sum of %d items = %d\n", items, sum)
	}()

	// Producer: transactions all the way down.
	for i := 1; i <= items; i++ {
		for {
			inserted := false
			e.MustAtomic(func(tx *stm.Tx) {
				inserted = false
				b := stm.Read(tx, buf)
				if len(b) >= capacity {
					notFull.WaitTx(tx)
					return
				}
				nb := make([]int, len(b), len(b)+1)
				copy(nb, b)
				stm.Write(tx, buf, append(nb, i))
				notEmpty.NotifyOne(tx)
				inserted = true
			})
			if inserted {
				break
			}
		}
	}

	<-done

	// Naked notify: perfectly legal — the condvar's internal transaction
	// protects its queue no matter the caller's context. With no waiter
	// parked it is a no-op that reports false.
	if woke := notEmpty.NotifyOne(nil); !woke {
		fmt.Println("naked notify on empty queue: no-op, as specified")
	}

	// A lock-based critical section interoperating with the same engine:
	// signal a waiter that parked under a mutex. The waiter re-checks its
	// predicate (`signaled`, protected by m) in a loop — the condvar never
	// wakes spuriously, but the loop keeps the code correct if a second
	// predicate ever shares this condvar (wake-ups are oblivious).
	var m syncx.Mutex
	cv := core.New(e, core.Options{})
	signaled := false // protected by m
	ready := make(chan struct{})
	woken := make(chan struct{})
	go func() {
		m.Lock()
		close(ready)
		for !signaled {
			cv.WaitLocked(&m) // pthread_cond_wait shape, minus spurious wake-ups
		}
		m.Unlock()
		fmt.Println("lock-based waiter woken by a transactional notifier")
		close(woken)
	}()
	<-ready
	for cv.Len() == 0 {
	}
	m.Lock()
	signaled = true
	m.Unlock()
	e.MustAtomic(func(tx *stm.Tx) { cv.NotifyOne(tx) })
	<-woken

	fmt.Printf("engine: %d commits, %d early commits (WAIT punctuations), %d aborts\n",
		e.Stats.Commits.Load(), e.Stats.EarlyCommits.Load(), e.Stats.Aborts.Load())
}
