// Pipeline: a dedup-style compression pipeline run under all three of the
// paper's systems, demonstrating that the SAME workload code runs on
// pthread-style condvars, TM condvars under locks, and full transactions —
// and printing the TM statistics that distinguish them (including the
// relaxed-transaction serialization that flattens dedup's scaling in the
// paper's Section 5.4).
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"time"

	"repro/internal/facility"
	"repro/internal/parsec"
)

func main() {
	b, _ := parsec.ByName("dedup")
	fmt.Println("dedup-style 5-stage pipeline, 4 worker threads per stage")
	var base uint64
	for _, sys := range facility.Kinds {
		cfg := parsec.Config{
			Threads: 4,
			System:  sys,
			Machine: parsec.Westmere,
			Scale:   0.5,
		}
		start := time.Now()
		res := b.Run(cfg)
		fmt.Printf("%-22s  %8v  checksum=%#x", sys, time.Since(start).Round(time.Microsecond), res.Checksum)
		if res.Engine != nil {
			st := &res.Engine.Stats
			fmt.Printf("  [txns: %d commits, %d aborts, %d relaxed]",
				st.Commits.Load(), st.Aborts.Load(), st.RelaxedTxns.Load())
		}
		fmt.Println()
		if base == 0 {
			base = res.Checksum
		} else if res.Checksum != base {
			fmt.Println("ERROR: checksum mismatch across systems!")
		}
	}
	fmt.Println("identical checksums: the three systems compute the same archive")
}
