// Graceful shutdown: context-cancelled waiters draining out of a live
// facility. A service built on the transaction-friendly condvar has two
// populations to unwind on shutdown: request goroutines parked on a
// condition that will never come true again, and the worker pool behind
// them. Abortable waits handle both — WaitLockedCtx returns false the
// moment the shutdown context is cancelled (no notification invented,
// no queue node or semaphore permit leaked), and Pool.CloseCtx bounds
// how long the caller waits for the drain while the shutdown itself
// always completes in the background.
//
//	go run ./examples/graceful-shutdown
package main

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/facility"
	"repro/internal/stm"
	"repro/internal/syncx"
)

// report is what one shutdown rehearsal observed.
type report struct {
	jobs     int64 // worker executions completed before shutdown
	drained  int64 // parked waiters released by cancellation
	notified int64 // parked waiters released by a real notification
	closeErr error // result of the bounded pool drain
}

// run serves a few batches on a worker pool while `waiters` goroutines
// park on a condvar for work that never arrives, then shuts everything
// down when ctx is cancelled: the parked waiters drain via
// WaitLockedCtx and the pool is retired with CloseCtx under the given
// grace period. It returns only after every goroutine it started has
// unwound — a stranded waiter would hang it.
func run(ctx context.Context, kind facility.Kind, workers, waiters, batches int, grace time.Duration) report {
	e := stm.NewEngine(stm.Config{})
	tk := &facility.Toolkit{Kind: kind, Engine: e}

	var rep report

	// The request population: parked until cancelled (or notified, if a
	// shutdown race delivers a real wake-up first — both are clean exits).
	cv := tk.NewCondVar()
	var m syncx.Mutex
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Lock()
			// cvlint:ignore waitloop one-shot shutdown park: any return path (cancel or notify) ends this waiter
			notified := cv.WaitLockedCtx(&m, ctx)
			m.Unlock()
			if notified {
				atomic.AddInt64(&rep.notified, 1)
			} else {
				atomic.AddInt64(&rep.drained, 1)
			}
		}()
	}

	// The worker population: a persistent pool serving batches.
	pool := facility.NewPool(tk, workers)
	for b := 0; b < batches; b++ {
		pool.Run(func(int) { atomic.AddInt64(&rep.jobs, 1) })
	}

	// Shutdown: wait for the stop signal, then unwind both populations.
	<-ctx.Done()
	wg.Wait() // cancellation released every parked waiter

	closeCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	rep.closeErr = pool.CloseCtx(closeCtx)
	return rep
}

func main() {
	for _, kind := range []facility.Kind{facility.LockTM, facility.Txn} {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		rep := run(ctx, kind, 4, 8, 3, 2*time.Second)
		cancel()
		fmt.Printf("%-22s jobs=%d drained=%d notified=%d closeErr=%v\n",
			kind, rep.jobs, rep.drained, rep.notified, rep.closeErr)
	}
}
