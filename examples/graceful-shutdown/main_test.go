package main

import (
	"context"
	"testing"
	"time"

	"repro/internal/facility"
)

// TestGracefulShutdownDrainsEveryWaiter runs the example's shutdown
// rehearsal under both TM-condvar kinds and checks the contract the
// example demonstrates: every parked waiter is accounted for (released
// by cancellation or by a real notification — never stranded), all
// batches ran, and the bounded pool drain succeeds within its grace
// period.
func TestGracefulShutdownDrainsEveryWaiter(t *testing.T) {
	const (
		workers = 4
		waiters = 8
		batches = 3
	)
	for _, kind := range []facility.Kind{facility.LockTM, facility.Txn} {
		t.Run(kind.Short(), func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
			defer cancel()

			done := make(chan report, 1)
			go func() { done <- run(ctx, kind, workers, waiters, batches, 5*time.Second) }()
			var rep report
			select {
			case rep = <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("shutdown hung: a waiter or worker was stranded")
			}

			if got := rep.drained + rep.notified; got != waiters {
				t.Fatalf("waiters accounted = %d (drained=%d notified=%d), want %d",
					got, rep.drained, rep.notified, waiters)
			}
			if rep.jobs != workers*batches {
				t.Fatalf("jobs = %d, want %d", rep.jobs, workers*batches)
			}
			if rep.closeErr != nil {
				t.Fatalf("CloseCtx: %v", rep.closeErr)
			}
		})
	}
}
