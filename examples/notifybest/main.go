// NotifyBest: the Section 3.4 extension that OS condition variables cannot
// offer. Because the waiting set lives in user space, a notifier can
// inspect WHAT each thread is waiting for and wake exactly the right one —
// eliminating the oblivious broadcast-everyone-and-recheck pattern.
//
// Here, worker goroutines wait for jobs of specific sizes; the allocator
// wakes the waiter whose requested size best fits the released capacity.
//
//	go run ./examples/notifybest
package main

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/stm"
	"repro/internal/syncx"
)

type request struct {
	id   int
	size int
}

func main() {
	e := stm.NewEngine(stm.Config{})
	cv := core.New(e, core.Options{})
	var m syncx.Mutex

	sizes := []int{100, 30, 70, 10, 50}
	var wg sync.WaitGroup
	order := make(chan int, len(sizes))
	for i, sz := range sizes {
		i, sz := i, sz
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Lock()
			s := syncx.NewLockSync(&m)
			// The tag describes the predicate this thread waits on. This
			// is a direct hand-off: NotifyBest's victim selection IS the
			// state change, so there is no separate predicate to re-check
			// in a loop.
			// cvlint:ignore waitloop direct hand-off via NotifyBest selection
			cv.WaitTagged(s, request{id: i, size: sz}, nil)
			order <- i
			fmt.Printf("worker %d (size %d) granted\n", i, sz)
		}()
		for cv.Len() != i+1 {
			time.Sleep(time.Millisecond)
		}
	}

	// Release capacity in chunks; each NotifyBest wakes the LARGEST
	// request that fits — a policy no kernel wait queue can express.
	for _, capacity := range []int{60, 35, 80, 1000, 1000} {
		capacity := capacity
		// cvlint:ignore nakednotify the granted capacity is handed off via the selector, not shared state
		woke := cv.NotifyBest(nil, func(tag any) int64 {
			r, ok := tag.(request)
			if !ok || r.size > capacity {
				return -1 // does not fit: skip
			}
			return int64(r.size) // best fit = largest that fits
		})
		fmt.Printf("released %4d -> woke someone: %v\n", capacity, woke)
		<-order
	}
	wg.Wait()
	fmt.Println("all workers granted; no oblivious wake-ups were needed")
}
