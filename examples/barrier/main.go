// Barrier: a fluidanimate-style iterative stencil computation whose phases
// meet at a condition-variable barrier — shown twice, once on the pthread
// baseline and once on the transaction-friendly condvar used through its
// pthread-compatible interface (the paper's Parsec+TMCondVar migration:
// zero changes to the application, only the condvar library swaps).
//
//	go run ./examples/barrier
package main

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/facility"
	"repro/internal/stm"
)

const (
	cells   = 4096
	steps   = 30
	workers = 4
)

func simulate(tk *facility.Toolkit) (uint64, time.Duration) {
	grid := make([]float64, cells)
	next := make([]float64, cells)
	for i := range grid {
		grid[i] = float64(i % 17)
	}
	bar := facility.NewBarrier(tk, workers)
	per := cells / workers

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		lo, hi := w*per, (w+1)*per
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := 0; s < steps; s++ {
				for i := lo; i < hi; i++ {
					l, r := i, i
					if i > 0 {
						l = i - 1
					}
					if i < cells-1 {
						r = i + 1
					}
					next[i] = (grid[l] + grid[i] + grid[r]) / 3
				}
				bar.Arrive() // everyone finished writing `next`
				for i := lo; i < hi; i++ {
					grid[i] = next[i]
				}
				bar.Arrive() // everyone finished publishing `grid`
			}
		}()
	}
	wg.Wait()
	sum := uint64(0)
	for i := range grid {
		sum += uint64(grid[i] * 4096)
	}
	return sum, time.Since(start)
}

func main() {
	baseTk := &facility.Toolkit{Kind: facility.LockPthread}
	sum1, d1 := simulate(baseTk)
	fmt.Printf("%-22s  %8v  checksum=%d\n", facility.LockPthread, d1.Round(time.Microsecond), sum1)

	tmTk := &facility.Toolkit{Kind: facility.LockTM, Engine: stm.NewEngine(stm.Config{})}
	sum2, d2 := simulate(tmTk)
	fmt.Printf("%-22s  %8v  checksum=%d\n", facility.LockTM, d2.Round(time.Microsecond), sum2)
	fmt.Printf("condvar queue transactions committed: %d\n", tmTk.Engine.Stats.Commits.Load())

	if sum1 != sum2 {
		fmt.Println("ERROR: results differ!")
		return
	}
	fmt.Println("same barrier semantics, same result — only the condvar library changed")
}
