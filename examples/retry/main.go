// Retry: the alternative condition-synchronization mechanism the paper's
// Section 6/7 discusses (Harris et al.'s composable "retry"), implemented
// by this repo's STM as an extension — and the reason transaction-friendly
// condvars still matter: retry requires software read-set instrumentation,
// so it cannot run on hardware TM, while the condvar works on both.
//
// The same bounded buffer is built twice: declaratively with stm.Retry,
// and with the condvar WaitTx pattern. Both run on the software engine;
// the retry version is then shown failing (by design) on the simulated
// HTM engine.
//
//	go run ./examples/retry
package main

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/stm"
)

const (
	capacity = 4
	items    = 2000
)

func retryBuffer(e *stm.Engine) time.Duration {
	buf := stm.NewVar(e, []int{})
	var wg sync.WaitGroup
	start := time.Now()
	wg.Add(2)
	go func() { // producer
		defer wg.Done()
		for i := 1; i <= items; i++ {
			e.MustAtomic(func(tx *stm.Tx) {
				b := stm.Read(tx, buf)
				if len(b) >= capacity {
					stm.Retry(tx) // declarative: block until buf changes
				}
				nb := make([]int, len(b), len(b)+1)
				copy(nb, b)
				stm.Write(tx, buf, append(nb, i))
			})
		}
	}()
	go func() { // consumer
		defer wg.Done()
		for i := 0; i < items; i++ {
			e.MustAtomic(func(tx *stm.Tx) {
				b := stm.Read(tx, buf)
				if len(b) == 0 {
					stm.Retry(tx)
				}
				stm.Write(tx, buf, b[1:])
			})
		}
	}()
	wg.Wait()
	return time.Since(start)
}

func condvarBuffer(e *stm.Engine) time.Duration {
	buf := stm.NewVar(e, []int{})
	notEmpty := core.New(e, core.Options{})
	notFull := core.New(e, core.Options{})
	var wg sync.WaitGroup
	start := time.Now()
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 1; i <= items; i++ {
			for {
				done := false
				e.MustAtomic(func(tx *stm.Tx) {
					done = false
					b := stm.Read(tx, buf)
					if len(b) >= capacity {
						notFull.WaitTx(tx)
						return
					}
					nb := make([]int, len(b), len(b)+1)
					copy(nb, b)
					stm.Write(tx, buf, append(nb, i))
					notEmpty.NotifyOne(tx)
					done = true
				})
				if done {
					break
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < items; i++ {
			for {
				done := false
				e.MustAtomic(func(tx *stm.Tx) {
					done = false
					b := stm.Read(tx, buf)
					if len(b) == 0 {
						notEmpty.WaitTx(tx)
						return
					}
					stm.Write(tx, buf, b[1:])
					notFull.NotifyOne(tx)
					done = true
				})
				if done {
					break
				}
			}
		}
	}()
	wg.Wait()
	return time.Since(start)
}

func main() {
	eRetry := stm.NewEngine(stm.Config{})
	d1 := retryBuffer(eRetry)
	fmt.Printf("retry-based buffer:   %8v  (%d retry sleeps, %d wakes)\n",
		d1.Round(time.Microsecond), eRetry.Stats.RetryWaits.Load(), eRetry.Stats.RetryWakes.Load())

	eCV := stm.NewEngine(stm.Config{})
	d2 := condvarBuffer(eCV)
	fmt.Printf("condvar-based buffer: %8v  (%d WAIT punctuations)\n",
		d2.Round(time.Microsecond), eCV.Stats.EarlyCommits.Load())

	// And the punchline: retry cannot run on hardware TM.
	htm := stm.NewEngine(stm.Config{Algorithm: stm.AlgHTM})
	v := stm.NewVar(htm, 0)
	func() {
		defer func() {
			if r := recover(); r != nil {
				fmt.Printf("retry on HTM: %v\n", r)
			}
		}()
		htm.MustAtomic(func(tx *stm.Tx) {
			_ = stm.Read(tx, v)
			stm.Retry(tx)
		})
	}()
	fmt.Println("condvars, in contrast, run unchanged on the HTM engine (see the PARSEC haswell runs)")
}
