// Baselines let a codebase adopt a new analyzer without first fixing
// every historical finding: -write-baseline records today's findings,
// -baseline suppresses exactly those, and anything new still fails the
// run. Entries match on (check, file, message) — deliberately not on
// line numbers, so unrelated edits that shift code do not resurrect
// baselined findings.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

type baselineEntry struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Message string `json:"message"`
}

type baselineFile struct {
	Entries []baselineEntry `json:"entries"`
}

func baselineKey(check, file, msg string) string {
	return check + "\x00" + filepath.ToSlash(file) + "\x00" + msg
}

// writeBaseline records diags as the new baseline at path.
func writeBaseline(path string, diags []lint.Diagnostic) error {
	bf := baselineFile{Entries: make([]baselineEntry, 0, len(diags))}
	for _, d := range diags {
		bf.Entries = append(bf.Entries, baselineEntry{
			Check:   d.Check,
			File:    filepath.ToSlash(d.Pos.Filename),
			Message: d.Msg,
		})
	}
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// loadBaseline reads a baseline file into a multiset of match keys: a
// finding that occurs twice must be baselined twice.
func loadBaseline(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	set := map[string]int{}
	for _, e := range bf.Entries {
		set[baselineKey(e.Check, e.File, e.Message)]++
	}
	return set, nil
}

// filterBaseline drops findings covered by the baseline multiset.
func filterBaseline(diags []lint.Diagnostic, set map[string]int) []lint.Diagnostic {
	if len(set) == 0 {
		return diags
	}
	out := diags[:0]
	for _, d := range diags {
		k := baselineKey(d.Check, d.Pos.Filename, d.Msg)
		if set[k] > 0 {
			set[k]--
			continue
		}
		out = append(out, d)
	}
	return out
}
