package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// exec invokes run() as the command would, capturing both streams.
func exec(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// golden compares got against testdata/<name>, rewriting the file when
// UPDATE_GOLDEN is set.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatalf("update golden %s: %v", path, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden %s: %v (run with UPDATE_GOLDEN=1 to create)", path, err)
	}
	if got != string(want) {
		t.Errorf("output differs from golden %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestListExitsZero(t *testing.T) {
	code, out, _ := exec(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"txescape", "impuretxn", "directstore", "waitloop", "nakednotify", "lostwakeup", "lockorder"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing analyzer %q", name)
		}
	}
}

func TestUnknownFormatIsUsageError(t *testing.T) {
	code, _, errb := exec(t, "-format", "xml", "./testdata/src/report")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb, "unknown -format") {
		t.Errorf("stderr = %q, want unknown-format message", errb)
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	code, out, errb := exec(t, "./testdata/src/clean")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, out, errb)
	}
	if out != "" {
		t.Errorf("stdout = %q, want empty", out)
	}
}

// TestFindingsExitNonZero pins the regression contract: findings mean
// exit 1 in every output format, with the rendered output golden-stable.
func TestFindingsExitNonZero(t *testing.T) {
	cases := []struct {
		format string
		golden string
	}{
		{"text", "report.txt.golden"},
		{"json", "report.json.golden"},
		{"sarif", "report.sarif.golden"},
	}
	for _, tc := range cases {
		t.Run(tc.format, func(t *testing.T) {
			code, out, errb := exec(t, "-format", tc.format, "./testdata/src/report")
			if code != 1 {
				t.Fatalf("exit = %d, want 1\nstderr: %s", code, errb)
			}
			if !strings.Contains(errb, "2 problem(s) found") {
				t.Errorf("stderr = %q, want problem count", errb)
			}
			golden(t, tc.golden, out)
		})
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	base := filepath.Join(t.TempDir(), "lint.base")
	code, _, errb := exec(t, "-write-baseline", base, "./testdata/src/report")
	if code != 0 {
		t.Fatalf("write-baseline exit = %d, want 0\nstderr: %s", code, errb)
	}
	if !strings.Contains(errb, "wrote baseline with 2 finding(s)") {
		t.Errorf("stderr = %q, want baseline summary", errb)
	}

	code, out, errb := exec(t, "-baseline", base, "./testdata/src/report")
	if code != 0 {
		t.Fatalf("baselined run exit = %d, want 0\nstdout: %s\nstderr: %s", code, out, errb)
	}

	// A baseline for one check still fails the run on the other finding.
	code, _, _ = exec(t, "-checks", "impuretxn", "-write-baseline", base, "./testdata/src/report")
	if code != 0 {
		t.Fatalf("write-baseline exit = %d, want 0", code)
	}
	code, out, _ = exec(t, "-baseline", base, "./testdata/src/report")
	if code != 1 {
		t.Fatalf("partially baselined run exit = %d, want 1", code)
	}
	if !strings.Contains(out, "txescape") || strings.Contains(out, "impuretxn") {
		t.Errorf("surviving findings = %q, want txescape only", out)
	}
}

func TestCacheReplaysFindings(t *testing.T) {
	t.Setenv("CVLINT_CACHE_DIR", t.TempDir())

	code1, out1, _ := exec(t, "-cache", "-format", "json", "./testdata/src/report")
	dir := os.Getenv("CVLINT_CACHE_DIR")
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("cache dir entries = %v (err %v), want exactly one", ents, err)
	}

	code2, out2, _ := exec(t, "-cache", "-format", "json", "./testdata/src/report")
	if code1 != 1 || code2 != 1 {
		t.Fatalf("exits = %d, %d, want 1, 1", code1, code2)
	}
	if out1 != out2 {
		t.Errorf("cache replay differs:\nfirst:  %s\nsecond: %s", out1, out2)
	}
}
