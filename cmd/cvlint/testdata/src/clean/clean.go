// Fixture exercised by the cvlint command tests: a package with no
// findings, pinning the zero exit status.
package clean

import "repro/internal/stm"

func deposit(e *stm.Engine, v *stm.Var[int], n int) {
	e.MustAtomic(func(tx *stm.Tx) {
		stm.Write(tx, v, stm.Read(tx, v)+n)
	})
}
