// Fixture exercised by the cvlint command tests: two findings with
// stable positions, so the JSON/SARIF golden files stay meaningful.
package report

import (
	"fmt"

	"repro/internal/stm"
)

var escaped *stm.Tx

func leak(e *stm.Engine) {
	e.MustAtomic(func(tx *stm.Tx) {
		fmt.Println("attempt")
		escaped = tx
	})
}
