// Finding cache. The interprocedural analyses make per-package cache
// keys unsound: a function's effect summary can change because a
// *dependency's* body changed, and the lostwakeup predicate-variable set
// is collected module-wide, so a package's findings can change without
// any of its own files changing. The sound unit is the whole loaded
// world, so the key is a content hash over every Go source file in the
// module plus everything that shapes the run (analyzer set, flags,
// targets, cache schema version). A hit replays the recorded findings
// without parsing or type-checking anything.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
)

// cacheVersion invalidates old entries when the diagnostic format or
// analyzer semantics change.
const cacheVersion = "cvlint-cache-v1"

// cacheDir returns the directory for cache entries: $CVLINT_CACHE_DIR if
// set (tests use this), else <user cache>/cvlint.
func cacheDir() (string, error) {
	if d := os.Getenv("CVLINT_CACHE_DIR"); d != "" {
		return d, nil
	}
	base, err := os.UserCacheDir()
	if err != nil {
		return "", err
	}
	return filepath.Join(base, "cvlint"), nil
}

// cacheKey hashes the module's source content and the run configuration.
func cacheKey(modDir string, analyzers []*lint.Analyzer, tests bool, dirs []string) (string, error) {
	h := sha256.New()
	fmt.Fprintln(h, cacheVersion)
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	fmt.Fprintln(h, strings.Join(names, ","))
	fmt.Fprintln(h, "tests:", tests)
	rels := make([]string, 0, len(dirs))
	for _, d := range dirs {
		if r, err := filepath.Rel(modDir, d); err == nil {
			rels = append(rels, filepath.ToSlash(r))
		} else {
			rels = append(rels, filepath.ToSlash(d))
		}
	}
	sort.Strings(rels)
	fmt.Fprintln(h, "targets:", strings.Join(rels, ","))

	// All module sources, testdata/vendor/hidden dirs excluded. _test.go
	// files are hashed unconditionally: cheaper to over-invalidate than
	// to track whether -tests pulled them in.
	err := filepath.WalkDir(modDir, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if p != modDir && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") && name != "go.mod" {
			return nil
		}
		rel, relErr := filepath.Rel(modDir, p)
		if relErr != nil {
			rel = p
		}
		fmt.Fprintln(h, "file:", filepath.ToSlash(rel))
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		_, err = io.Copy(h, f)
		f.Close()
		return err
	})
	if err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

type cacheEntry struct {
	Version     string           `json:"version"`
	Diagnostics []jsonDiagnostic `json:"diagnostics"`
}

func cacheLoad(key string) ([]lint.Diagnostic, bool) {
	dir, err := cacheDir()
	if err != nil {
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(dir, key+".json"))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if json.Unmarshal(data, &e) != nil || e.Version != cacheVersion {
		return nil, false
	}
	diags := make([]lint.Diagnostic, 0, len(e.Diagnostics))
	for _, jd := range e.Diagnostics {
		diags = append(diags, lint.Diagnostic{
			Pos:   token.Position{Filename: filepath.FromSlash(jd.File), Line: jd.Line, Column: jd.Column},
			Check: jd.Check,
			Msg:   jd.Message,
		})
	}
	return diags, true
}

func cacheStore(key string, diags []lint.Diagnostic) error {
	dir, err := cacheDir()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.Marshal(cacheEntry{Version: cacheVersion, Diagnostics: toJSONDiagnostics(diags)})
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, key+".json"), data, 0o644)
}
