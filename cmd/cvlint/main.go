// Command cvlint statically checks uses of the condvar/STM API for the
// misuse patterns the Go type system cannot reject: transactions escaping
// their atomic block, un-deferred side effects inside transaction bodies,
// direct Var access mixed with transactional access, condvar waits with no
// predicate re-check loop, and notifies that advertise no state change.
//
// Usage:
//
//	cvlint [flags] [packages]
//
//	cvlint ./...                      # whole module (the CI invocation)
//	cvlint -checks waitloop ./...     # one analyzer
//	cvlint -tests ./internal/core     # include in-package _test.go files
//	cvlint -list                      # describe the analyzer suite
//
// Exit status is 1 when diagnostics are reported, 2 on usage or load
// errors. Suppress an individual finding with a justified directive:
//
//	n.next.StoreDirect(nil) // cvlint:ignore directstore node is private here
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	checks := flag.String("checks", "all", "comma-separated checks to run (see -list)")
	tests := flag.Bool("tests", false, "also analyze in-package _test.go files")
	list := flag.Bool("list", false, "list the analyzers and exit")
	debug := flag.Bool("debug", false, "print soft type-check errors (analysis is best-effort under them)")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := lint.ByName(*checks)
	if err != nil {
		fail(err)
	}
	cwd, err := os.Getwd()
	if err != nil {
		fail(err)
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fail(err)
	}
	loader.IncludeTests = *tests
	dirs, err := lint.ExpandPatterns(cwd, flag.Args())
	if err != nil {
		fail(err)
	}

	found := 0
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fail(fmt.Errorf("loading %s: %w", dir, err))
		}
		if *debug {
			for _, te := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "cvlint: typecheck %s: %v\n", pkg.Path, te)
			}
		}
		for _, d := range lint.Run(pkg, analyzers) {
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil {
				d.Pos.Filename = rel
			}
			fmt.Println(d)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "cvlint: %d problem(s) found\n", found)
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cvlint:", err)
	os.Exit(2)
}
