// Command cvlint statically checks uses of the condvar/STM API for the
// misuse patterns the Go type system cannot reject: transactions escaping
// their atomic block, un-deferred side effects inside transaction bodies
// (through any depth of helper calls), direct Var access mixed with
// transactional access, condvar waits with no predicate re-check loop,
// notifies that advertise no state change, predicate writes that strand
// parked waiters, and blocking operations reachable from optimistic
// transaction bodies.
//
// Usage:
//
//	cvlint [flags] [packages]
//
//	cvlint ./...                      # whole module (the CI invocation)
//	cvlint -checks waitloop ./...     # one analyzer
//	cvlint -tests ./internal/core     # include in-package _test.go files
//	cvlint -format sarif ./...        # machine-readable output (json|sarif)
//	cvlint -baseline lint.base ./...  # suppress known historical findings
//	cvlint -cache ./...               # reuse findings when sources unchanged
//	cvlint -list                      # describe the analyzer suite
//
// Exit status is 1 when diagnostics are reported, 2 on usage or load
// errors. Suppress an individual finding with a justified directive:
//
//	n.next.StoreDirect(nil) // cvlint:ignore directstore node is private here
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command, factored for tests: parse flags, load, lint,
// render. Returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cvlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checks := fs.String("checks", "all", "comma-separated checks to run (see -list)")
	tests := fs.Bool("tests", false, "also analyze in-package _test.go files")
	list := fs.Bool("list", false, "list the analyzers and exit")
	debug := fs.Bool("debug", false, "print soft type-check errors (analysis is best-effort under them)")
	format := fs.String("format", "text", "output format: text, json, or sarif")
	baselinePath := fs.String("baseline", "", "suppress findings recorded in this baseline file")
	writeBaselinePath := fs.String("write-baseline", "", "record current findings to this baseline file and exit")
	useCache := fs.Bool("cache", false, "replay cached findings when module sources are unchanged")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "cvlint: unknown -format %q (want text, json, or sarif)\n", *format)
		return 2
	}
	analyzers, err := lint.ByName(*checks)
	if err != nil {
		return fail(stderr, err)
	}
	cwd, err := os.Getwd()
	if err != nil {
		return fail(stderr, err)
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		return fail(stderr, err)
	}
	loader.IncludeTests = *tests
	dirs, err := lint.ExpandPatterns(cwd, fs.Args())
	if err != nil {
		return fail(stderr, err)
	}

	// The cache key covers every module source file, so a hit is exactly
	// "nothing that could change the findings has changed".
	var diags []lint.Diagnostic
	cached := false
	cacheID := ""
	if *useCache {
		if key, err := cacheKey(loader.ModDir, analyzers, *tests, dirs); err == nil {
			cacheID = key
			diags, cached = cacheLoad(key)
		}
	}
	if !cached {
		pkgs := make([]*lint.Package, 0, len(dirs))
		for _, dir := range dirs {
			pkg, err := loader.LoadDir(dir)
			if err != nil {
				return fail(stderr, fmt.Errorf("loading %s: %w", dir, err))
			}
			if *debug {
				for _, te := range pkg.TypeErrors {
					fmt.Fprintf(stderr, "cvlint: typecheck %s: %v\n", pkg.Path, te)
				}
			}
			pkgs = append(pkgs, pkg)
		}
		mod := lint.NewModule(loader, pkgs...)
		for _, pkg := range pkgs {
			diags = append(diags, lint.Run(mod, pkg, analyzers)...)
		}
		if cacheID != "" {
			_ = cacheStore(cacheID, diags) // best-effort; never fails the run
		}
	}

	// Render (and baseline-match) with paths relative to the invocation
	// directory, as CI and humans expect.
	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].Pos.Filename); err == nil {
			diags[i].Pos.Filename = rel
		}
	}

	if *writeBaselinePath != "" {
		if err := writeBaseline(*writeBaselinePath, diags); err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stderr, "cvlint: wrote baseline with %d finding(s) to %s\n", len(diags), *writeBaselinePath)
		return 0
	}
	if *baselinePath != "" {
		set, err := loadBaseline(*baselinePath)
		if err != nil {
			return fail(stderr, err)
		}
		diags = filterBaseline(diags, set)
	}

	switch *format {
	case "json":
		err = writeJSON(stdout, diags)
	case "sarif":
		err = writeSARIF(stdout, analyzers, diags)
	default:
		err = writeText(stdout, diags)
	}
	if err != nil {
		return fail(stderr, err)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "cvlint: %d problem(s) found\n", len(diags))
		return 1
	}
	return 0
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "cvlint:", err)
	return 2
}
