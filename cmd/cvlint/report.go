// Output formats for cvlint findings. The text form is the human/CI
// default; -format json is the stable machine interface; -format sarif
// emits a minimal SARIF 2.1.0 log for code-scanning UIs.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"

	"repro/internal/lint"
)

// jsonDiagnostic is the stable wire form of one finding.
type jsonDiagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func toJSONDiagnostics(diags []lint.Diagnostic) []jsonDiagnostic {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			File:    filepath.ToSlash(d.Pos.Filename),
			Line:    d.Pos.Line,
			Column:  d.Pos.Column,
			Check:   d.Check,
			Message: d.Msg,
		})
	}
	return out
}

func writeText(w io.Writer, diags []lint.Diagnostic) error {
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d); err != nil {
			return err
		}
	}
	return nil
}

func writeJSON(w io.Writer, diags []lint.Diagnostic) error {
	doc := struct {
		Diagnostics []jsonDiagnostic `json:"diagnostics"`
		Count       int              `json:"count"`
	}{toJSONDiagnostics(diags), len(diags)}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// SARIF 2.1.0, minimal subset: one run, one rule per analyzer, one
// result per finding.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

func writeSARIF(w io.Writer, analyzers []*lint.Analyzer, diags []lint.Diagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{a.Doc}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Check,
			Level:   "warning",
			Message: sarifMessage{d.Msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "cvlint", Rules: rules}}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
