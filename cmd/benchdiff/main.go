// Command benchdiff compares two benchmark trajectory documents (the
// BENCH_*.json files `parsecbench -sweep` writes) and fails on
// regressions, making the committed trajectory a gate instead of a
// souvenir.
//
// Usage:
//
//	benchdiff [-threshold F] OLD.json NEW.json
//	benchdiff -check FILE.json...
//
// In compare mode it prints a per-metric delta table for every
// (benchmark, system, procs) point present in both documents and exits
// 1 naming each metric that worsened by more than -threshold
// (throughput down, abort rate up, park/broadcast p99 up). Points
// present in only one document are listed but never gate — adding a
// benchmark must not fail the check.
//
// In -check mode it only validates each file against the current
// schema (version, metadata, point sanity) — the cheap CI pass that
// keeps committed documents loadable.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	check := flag.Bool("check", false, "validate the given documents against the schema and exit")
	threshold := flag.Float64("threshold", bench.DefaultThreshold,
		"relative worsening tolerated before a metric counts as regressed")
	flag.Parse()

	if *check {
		if flag.NArg() == 0 {
			fmt.Fprintln(os.Stderr, "benchdiff: -check needs at least one file")
			os.Exit(2)
		}
		fail := false
		for _, path := range flag.Args() {
			if _, err := bench.Load(path); err != nil {
				fmt.Fprintln(os.Stderr, "benchdiff:", err)
				fail = true
				continue
			}
			fmt.Printf("%s: ok\n", path)
		}
		if fail {
			os.Exit(1)
		}
		return
	}

	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold F] OLD.json NEW.json")
		os.Exit(2)
	}
	oldDoc, err := bench.Load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newDoc, err := bench.Load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	report := bench.Compare(oldDoc, newDoc, *threshold)
	report.WriteTable(os.Stdout)
	if n := len(report.Regressions); n > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) beyond %.0f%%:\n", n, *threshold*100)
		for _, row := range report.Regressions {
			fmt.Fprintf(os.Stderr, "  %s %s: %s -> %s (%s)\n",
				row.Key, row.Metric,
				fmt.Sprintf("%g", row.Old), fmt.Sprintf("%g", row.New),
				deltaStr(row.Delta))
		}
		os.Exit(1)
	}
	fmt.Println("benchdiff: no regressions")
}

func deltaStr(d float64) string {
	if d != d { // NaN: no baseline
		return "no baseline"
	}
	return fmt.Sprintf("%+.1f%%", d*100)
}
