// Command cvtop is a terminal viewer for the live-introspection
// endpoints (DESIGN.md §10): point it at a process started with
// -introspect and it polls /debug/cv/vars, /debug/cv/waiters and
// /debug/cv/conflicts, rendering engine health, commit/abort rates, the
// busiest condition variables with their deepest waiters, the causal
// wake-chain pane (chain depth, hand-off hop latency, and who consumed
// each wake: the waiter, a timeout, or a cancellation), and the
// hottest transactional Vars by attributed aborts.
//
// Usage:
//
//	cvtop -addr 127.0.0.1:6070 [flags]
//
//	-addr host:port   introspection endpoint to poll (required)
//	-interval d       poll/refresh period (default 1s)
//	-n N              show the top N condvars (default 10)
//	-once             render a single frame and exit (no screen clear)
//	-check            probe all /debug/cv/* endpoints, validate their
//	                  formats (Prometheus exposition, JSON shapes) and
//	                  exit; used by verify.sh as the smoke gate
//
// Rates are deltas between consecutive polls, so the first frame shows
// totals only.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs/registry"
)

func main() {
	addr := flag.String("addr", "", "introspection endpoint (host:port) to poll")
	interval := flag.Duration("interval", time.Second, "poll/refresh period")
	topN := flag.Int("n", 10, "show the top N condvars")
	once := flag.Bool("once", false, "render a single frame and exit")
	check := flag.Bool("check", false, "validate all endpoints and exit")
	flag.Parse()

	if *addr == "" {
		fmt.Fprintln(os.Stderr, "cvtop: -addr is required")
		os.Exit(2)
	}
	base := "http://" + *addr

	if *check {
		if err := runCheck(base); err != nil {
			fmt.Fprintln(os.Stderr, "cvtop: check failed:", err)
			os.Exit(1)
		}
		fmt.Println("cvtop: all endpoints OK")
		return
	}

	var prev *sample
	for {
		cur, err := poll(base)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cvtop:", err)
			os.Exit(1)
		}
		var out strings.Builder
		render(&out, cur, prev, *topN)
		if *once {
			io.Copy(os.Stdout, strings.NewReader(out.String())) //nolint:errcheck
			return
		}
		fmt.Print("\x1b[H\x1b[2J" + out.String())
		prev = cur
		time.Sleep(*interval)
	}
}

// runCheck probes every endpoint and validates its format.
func runCheck(base string) error {
	body, err := fetch(base + "/debug/cv/metrics")
	if err != nil {
		return err
	}
	if err := registry.ValidateExposition(body); err != nil {
		return fmt.Errorf("/debug/cv/metrics: %w", err)
	}
	body, err = fetch(base + "/debug/cv/vars")
	if err != nil {
		return err
	}
	var vars map[string]any
	if err := json.Unmarshal(body, &vars); err != nil {
		return fmt.Errorf("/debug/cv/vars: %w", err)
	}
	if len(vars) == 0 {
		return fmt.Errorf("/debug/cv/vars: no variables exported")
	}
	body, err = fetch(base + "/debug/cv/waiters")
	if err != nil {
		return err
	}
	var wd struct {
		GeneratedAt time.Time         `json:"generated_at"`
		Waiters     []registry.Waiter `json:"waiters"`
	}
	if err := json.Unmarshal(body, &wd); err != nil {
		return fmt.Errorf("/debug/cv/waiters: %w", err)
	}
	if wd.GeneratedAt.IsZero() {
		return fmt.Errorf("/debug/cv/waiters: missing generated_at")
	}
	body, err = fetch(base + "/debug/cv/conflicts")
	if err != nil {
		return err
	}
	var cd struct {
		GeneratedAt time.Time                         `json:"generated_at"`
		TopK        int                               `json:"top_k"`
		Engines     map[string][]registry.ConflictVar `json:"engines"`
	}
	if err := json.Unmarshal(body, &cd); err != nil {
		return fmt.Errorf("/debug/cv/conflicts: %w", err)
	}
	if cd.GeneratedAt.IsZero() || cd.TopK <= 0 {
		return fmt.Errorf("/debug/cv/conflicts: missing generated_at/top_k")
	}
	// /debug/cv/trace legitimately 404s when no tracer is attached; any
	// 200 must be valid JSON.
	resp, err := http.Get(base + "/debug/cv/trace")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		if !json.Valid(raw) {
			return fmt.Errorf("/debug/cv/trace: invalid JSON")
		}
	}
	return nil
}

func fetch(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// sample is one poll of the endpoint.
type sample struct {
	at          time.Time
	scalars     map[string]float64 // full "name{labels}" key -> value
	hists       map[string]histVar
	waiters     []registry.Waiter
	sources     []sourceSummary
	conflicts   map[string][]registry.ConflictVar // engine -> top-K hot Vars
	profilingOn bool
}

type histVar struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Max   int64 `json:"max"`
	P50   int64 `json:"p50"`
	P99   int64 `json:"p99"`
}

type sourceSummary struct {
	Source          string `json:"source"`
	Depth           int    `json:"depth"`
	OldestParkNS    int64  `json:"oldest_park_ns"`
	OldestEnqueueNS int64  `json:"oldest_enqueue_ns"`
}

func poll(base string) (*sample, error) {
	s := &sample{
		at:      time.Now(),
		scalars: map[string]float64{},
		hists:   map[string]histVar{},
	}
	body, err := fetch(base + "/debug/cv/vars")
	if err != nil {
		return nil, err
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(body, &raw); err != nil {
		return nil, fmt.Errorf("vars: %w", err)
	}
	for k, v := range raw {
		var f float64
		if err := json.Unmarshal(v, &f); err == nil {
			s.scalars[k] = f
			continue
		}
		var h histVar
		if err := json.Unmarshal(v, &h); err == nil {
			s.hists[k] = h
		}
	}
	body, err = fetch(base + "/debug/cv/waiters")
	if err != nil {
		return nil, err
	}
	var wd struct {
		Sources []sourceSummary   `json:"sources"`
		Waiters []registry.Waiter `json:"waiters"`
	}
	if err := json.Unmarshal(body, &wd); err != nil {
		return nil, fmt.Errorf("waiters: %w", err)
	}
	s.sources = wd.Sources
	s.waiters = wd.Waiters
	body, err = fetch(base + "/debug/cv/conflicts")
	if err != nil {
		return nil, err
	}
	var cd struct {
		ProfilingOn bool                              `json:"profiling_on"`
		Engines     map[string][]registry.ConflictVar `json:"engines"`
	}
	if err := json.Unmarshal(body, &cd); err != nil {
		return nil, fmt.Errorf("conflicts: %w", err)
	}
	s.conflicts = cd.Engines
	s.profilingOn = cd.ProfilingOn
	return s, nil
}

// splitKey separates "name{k="v",...}" into name and the label block.
func splitKey(key string) (name, labels string) {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i], key[i:]
	}
	return key, ""
}

// labelValue extracts one label's value from a rendered label block.
func labelValue(labels, key string) string {
	marker := key + `="`
	i := strings.Index(labels, marker)
	if i < 0 {
		return ""
	}
	rest := labels[i+len(marker):]
	if j := strings.IndexByte(rest, '"'); j >= 0 {
		return rest[:j]
	}
	return ""
}

// engineRow aggregates one engine's scalars for the header table.
type engineRow struct {
	name                     string
	labels                   string
	commits, aborts, serials float64
	health                   float64
}

func healthName(v float64) string {
	switch int(v) {
	case 0:
		return "healthy"
	case 1:
		return "degraded"
	case 2:
		return "serial"
	default:
		return "?"
	}
}

func render(w *strings.Builder, cur, prev *sample, topN int) {
	fmt.Fprintf(w, "cvtop  %s", cur.at.Format("15:04:05"))
	if prev != nil {
		fmt.Fprintf(w, "  (rates over %v)", cur.at.Sub(prev.at).Round(time.Millisecond))
	}
	fmt.Fprintln(w)

	// Engines: group stm_* scalars by label block.
	engines := map[string]*engineRow{}
	for k, v := range cur.scalars {
		name, labels := splitKey(k)
		if !strings.HasPrefix(name, "stm_") {
			continue
		}
		eng := labelValue(labels, "engine")
		row := engines[labels]
		if row == nil {
			row = &engineRow{name: eng, labels: labels}
			engines[labels] = row
		}
		switch name {
		case "stm_commits_total":
			row.commits = v
		case "stm_aborts_total":
			row.aborts = v
		case "stm_serial_commits_total":
			row.serials = v
		case "stm_health":
			row.health = v
		}
	}
	var rows []*engineRow
	for _, r := range engines {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	if len(rows) > 0 {
		fmt.Fprintf(w, "\n%-24s %-9s %12s %12s %10s\n", "ENGINE", "HEALTH", "COMMITS", "ABORTS", "SERIAL")
		for _, r := range rows {
			commits, aborts := r.commits, r.aborts
			suffix := ""
			if prev != nil {
				dt := cur.at.Sub(prev.at).Seconds()
				if dt > 0 {
					commits = (r.commits - prev.scalars["stm_commits_total"+r.labels]) / dt
					aborts = (r.aborts - prev.scalars["stm_aborts_total"+r.labels]) / dt
					suffix = "/s"
				}
			}
			fmt.Fprintf(w, "%-24s %-9s %11.0f%s %11.0f%s %10.0f\n",
				r.name, healthName(r.health), commits, suffix, aborts, suffix, r.serials)
		}
	}

	// Condvars: the waiters roll-up, deepest / most starved first.
	srcs := append([]sourceSummary(nil), cur.sources...)
	sort.Slice(srcs, func(i, j int) bool {
		if srcs[i].Depth != srcs[j].Depth {
			return srcs[i].Depth > srcs[j].Depth
		}
		return srcs[i].OldestParkNS > srcs[j].OldestParkNS
	})
	if len(srcs) > topN {
		srcs = srcs[:topN]
	}
	fmt.Fprintf(w, "\n%-32s %7s %16s %16s\n", "CONDVAR", "DEPTH", "OLDEST PARK", "OLDEST ENQUEUE")
	if len(srcs) == 0 {
		fmt.Fprintln(w, "(no waiters)")
	}
	for _, s := range srcs {
		park := "-"
		if s.OldestParkNS >= 0 {
			park = time.Duration(s.OldestParkNS).Round(time.Microsecond).String()
		}
		fmt.Fprintf(w, "%-32s %7d %16s %16s\n", s.Source, s.Depth, park,
			time.Duration(s.OldestEnqueueNS).Round(time.Microsecond))
	}

	// Park-latency summary per labeled cv_sem_park_ns histogram.
	var hkeys []string
	for k := range cur.hists {
		if name, _ := splitKey(k); name == "cv_sem_park_ns" {
			hkeys = append(hkeys, k)
		}
	}
	sort.Strings(hkeys)
	if len(hkeys) > 0 {
		fmt.Fprintf(w, "\n%-24s %10s %12s %12s %12s\n", "PARK LATENCY", "COUNT", "P50", "P99", "MAX")
		for _, k := range hkeys {
			h := cur.hists[k]
			_, labels := splitKey(k)
			fmt.Fprintf(w, "%-24s %10d %12s %12s %12s\n",
				labelValue(labels, "engine"), h.Count,
				time.Duration(h.P50), time.Duration(h.P99), time.Duration(h.Max))
		}
	}

	renderWakeChains(w, cur, topN)
	renderConflicts(w, cur, topN)
}

// renderWakeChains prints the causal wake-propagation pane: per-source
// chain depth, hand-off hop latency and consumer attribution, read from
// the cv_wake_chain_depth / cv_handoff_hop_ns / cv_wake_consumed_total
// instruments (engine-level rows and any per-CV rows registered via
// RegisterChainMetrics).
func renderWakeChains(w *strings.Builder, cur *sample, topN int) {
	type chainRow struct {
		src                string
		depth, hop         histVar
		waiter, timed, cxl float64
	}
	rows := map[string]*chainRow{}
	get := func(labels string) *chainRow {
		src := labelValue(labels, "cv")
		if src == "" {
			src = labelValue(labels, "engine")
		}
		r := rows[src]
		if r == nil {
			r = &chainRow{src: src}
			rows[src] = r
		}
		return r
	}
	for k, h := range cur.hists {
		switch name, labels := splitKey(k); name {
		case "cv_wake_chain_depth":
			get(labels).depth = h
		case "cv_handoff_hop_ns":
			get(labels).hop = h
		}
	}
	for k, v := range cur.scalars {
		name, labels := splitKey(k)
		if name != "cv_wake_consumed_total" {
			continue
		}
		r := get(labels)
		switch labelValue(labels, "by") {
		case "waiter":
			r.waiter = v
		case "timeout":
			r.timed = v
		case "cancel":
			r.cxl = v
		}
	}
	var out []*chainRow
	for _, r := range rows {
		out = append(out, r)
	}
	if len(out) == 0 {
		return
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].depth.Count != out[j].depth.Count {
			return out[i].depth.Count > out[j].depth.Count
		}
		return out[i].src < out[j].src
	})
	if len(out) > topN {
		out = out[:topN]
	}
	fmt.Fprintf(w, "\n%-24s %10s %6s %6s %12s %10s %9s %8s\n",
		"WAKE CHAINS", "WAKES", "D-P50", "D-MAX", "HOP P99", "WAITER", "TIMEOUT", "CANCEL")
	for _, r := range out {
		fmt.Fprintf(w, "%-24s %10d %6d %6d %12s %10.0f %9.0f %8.0f\n",
			r.src, r.depth.Count, r.depth.P50, r.depth.Max,
			time.Duration(r.hop.P99).Round(time.Nanosecond), r.waiter, r.timed, r.cxl)
	}
}

// conflictRow flattens the per-engine attribution tables for ranking.
type conflictRow struct {
	engine string
	cv     registry.ConflictVar
}

// renderConflicts prints the hottest Vars by attributed aborts across
// all engines — the live view of /debug/cv/conflicts.
func renderConflicts(w *strings.Builder, cur *sample, topN int) {
	var rows []conflictRow
	for eng, cvs := range cur.conflicts {
		for _, cv := range cvs {
			rows = append(rows, conflictRow{engine: eng, cv: cv})
		}
	}
	if len(rows) == 0 {
		if !cur.profilingOn {
			fmt.Fprintln(w, "\nTOP CONFLICTS: (attribution off — start the target with -profile or stm.SetProfiling)")
		}
		return
	}
	sort.Slice(rows, func(i, j int) bool {
		// The "(unattributed)" residue bucket sorts last no matter how
		// large: it is a catch-all, not an actionable Var.
		iu, ju := rows[i].cv.Var == "(unattributed)", rows[j].cv.Var == "(unattributed)"
		if iu != ju {
			return ju
		}
		if rows[i].cv.Total != rows[j].cv.Total {
			return rows[i].cv.Total > rows[j].cv.Total
		}
		return rows[i].cv.Var < rows[j].cv.Var
	})
	if len(rows) > topN {
		rows = rows[:topN]
	}
	fmt.Fprintf(w, "\n%-28s %-14s %10s %12s  %s\n",
		"TOP CONFLICTS (VAR)", "ENGINE", "ABORTS", "ENCOUNTERS", "REASONS")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %-14s %10d %12d  %s\n",
			r.cv.Var, r.engine, r.cv.Total, r.cv.Encounters, reasonMix(r.cv.ByReason))
	}
}

// reasonMix renders a compact "reason:count" list, largest first.
func reasonMix(byReason map[string]int64) string {
	type rc struct {
		r string
		n int64
	}
	var mix []rc
	for r, n := range byReason {
		mix = append(mix, rc{r, n})
	}
	sort.Slice(mix, func(i, j int) bool {
		if mix[i].n != mix[j].n {
			return mix[i].n > mix[j].n
		}
		return mix[i].r < mix[j].r
	})
	parts := make([]string, len(mix))
	for i, m := range mix {
		parts[i] = fmt.Sprintf("%s:%d", m.r, m.n)
	}
	return strings.Join(parts, " ")
}
