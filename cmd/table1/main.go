// Command table1 regenerates the paper's Table 1 ("Synchronization
// characteristics of PARSEC source code"): per benchmark, the number of
// atomic blocks in the transactionalized configuration, how many of them
// contain condition-variable operations (barrier sites in parentheses),
// and how many wait sites were split by manual refactoring.
//
// Two columns are printed per quantity: this reproduction's counts
// (application code plus the facility variants it instantiates) and the
// paper's original counts, whose TOTAL row is 65 / 19 (6) / 11 (5).
package main

import (
	"os"

	"repro/internal/harness"
	"repro/internal/parsec"
)

func main() {
	harness.WriteTable1(os.Stdout, parsec.All())
}
