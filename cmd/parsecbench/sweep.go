package main

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/harness"
	"repro/internal/obs"
)

// runSweep is -sweep mode: run the benchmark matrix once per GOMAXPROCS
// value and write one schema-versioned trajectory document (bench.Doc).
// Each procs value measures only the saturated cell per benchmark
// (TopThreadsOnly) — the trajectory tracks peak behaviour per core
// count, not the whole thread curve.
func runSweep(base harness.SweepConfig, procsList, outPath string, progress io.Writer) error {
	procs, err := parseProcs(procsList)
	if err != nil {
		return err
	}

	origProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(origProcs)

	meta := bench.Collect()
	meta.Machine = base.Machine.String()
	meta.Scale = base.Scale
	meta.Seed = base.Seed
	meta.Trials = base.Trials
	meta.Warmup = base.Warmup
	meta.WakeFanout = base.CVOpts.WakeFanout
	meta.SerialWake = base.CVOpts.SerialWake
	meta.SemLanes = base.CVOpts.SemLanes

	doc := &bench.Doc{Schema: bench.Schema, Meta: meta}
	for _, p := range procs {
		runtime.GOMAXPROCS(p)
		cfg := base
		cfg.MaxThreads = p
		cfg.TopThreadsOnly = true
		cfg.CollectMetrics = true // points need the per-trial histograms
		if progress != nil {
			fmt.Fprintf(progress, "parsecbench: sweep GOMAXPROCS=%d\n", p)
		}
		sw := harness.Run(cfg)
		doc.Points = append(doc.Points, sweepPoints(sw, p)...)
	}

	if err := doc.Validate(); err != nil {
		return fmt.Errorf("sweep produced invalid document: %w", err)
	}
	if err := doc.Write(outPath); err != nil {
		return err
	}
	if progress != nil {
		fmt.Fprintf(progress, "parsecbench: wrote %d points to %s\n", len(doc.Points), outPath)
	}
	return nil
}

// sweepPoints converts one sweep's cells into trajectory points at the
// given procs value. Park/broadcast percentiles come from the per-trial
// condvar histograms, merged across trials before taking quantiles.
func sweepPoints(sw *harness.Sweep, procs int) []bench.Point {
	var out []bench.Point
	for _, c := range sw.Cells {
		mean := c.Mean.Nanoseconds()
		if mean <= 0 {
			mean = 1
		}
		p := bench.Point{
			Benchmark:      c.Benchmark,
			System:         c.System.Short(),
			Procs:          procs,
			Threads:        c.Threads,
			MeanNS:         mean,
			ThroughputOpsS: 1e9 / float64(mean),
			Commits:        c.Commits,
			Aborts:         c.Aborts,
		}
		if total := c.Commits + c.Aborts; total > 0 {
			p.AbortRate = float64(c.Aborts) / float64(total)
		}
		var park, broadcast obs.HistogramSnapshot
		for _, tm := range c.Trials {
			park.Merge(tm.CVHist["sem_park_ns"])
			broadcast.Merge(tm.CVHist["broadcast_ns"])
		}
		p.ParkP50NS = park.Quantile(0.50)
		p.ParkP99NS = park.Quantile(0.99)
		p.BroadcastP50NS = broadcast.Quantile(0.50)
		p.BroadcastP99NS = broadcast.Quantile(0.99)
		out = append(out, p)
	}
	return out
}

// parseProcs parses the -sweep argument: a comma-separated ascending
// GOMAXPROCS list like "1,2,4,8".
func parseProcs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("-sweep: bad GOMAXPROCS value %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-sweep: empty GOMAXPROCS list")
	}
	sort.Ints(out)
	return out, nil
}
