// Command parsecbench regenerates the paper's evaluation (Section 5):
// Figures 1 and 2 (per-benchmark time vs threads under the three systems,
// on the STM "westmere" and simulated-HTM "haswell" machines) and Figure 3
// (geometric-mean speedup vs the pthread baseline).
//
// Usage:
//
//	parsecbench [flags]
//
//	-machine westmere|haswell   TM substrate (default westmere → Figure 1)
//	-bench   name[,name...]     subset of benchmarks (default: all eight)
//	-threads N                  max thread count (default 8)
//	-trials  N                  timed trials per cell (default 3; paper used 5)
//	-warmup  N                  untimed warm-up runs per cell (default 1)
//	-preset  name               test / simsmall / native / large inputs
//	-scale   F                  explicit scale factor (overrides -preset)
//	-seed    N                  input seed
//	-summary                    print only the Figure 3 speedup table
//	-quiet                      suppress live progress lines
//	-metrics                    print the per-trial metrics snapshot as JSON
//	-trace out.json             record a Chrome trace_event file of the run
//	-tracebuf N                 trace ring-buffer capacity in events
//	-resultdir dir              per-run JSON results directory ("" disables)
//	-introspect addr            serve /debug/cv/* live endpoints while running
//	-wakefanout N               NotifyAll chained-wake fan-out (0 = default)
//	-serialwake                 ablation: serial broadcast wake loop
//	-semlanes N                 node-semaphore waiter-lane count (0 = auto)
//	-profile                    enable STM contention attribution
//	-sweep "1,2,4"              trajectory mode: run the matrix once per
//	                            GOMAXPROCS value, write a BENCH_*.json doc
//	-benchout path              sweep output path (default BENCH_<host>_<date>.json)
//
// Examples:
//
//	parsecbench -machine westmere              # Figure 1 data + Figure 3(a)
//	parsecbench -machine haswell               # Figure 2 data + Figure 3(b)
//	parsecbench -bench dedup -threads 4        # just the dedup anomaly
//	parsecbench -trace t.json -metrics         # trace + metrics JSON
//	parsecbench -preset test -sweep 1,2        # trajectory document
//	                                           # (compare with cmd/benchdiff)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/obs/introspect"
	"repro/internal/obs/registry"
	"repro/internal/parsec"
	"repro/internal/stm"
	"repro/internal/waketrace"
)

func main() {
	machine := flag.String("machine", "westmere", "TM substrate: westmere (STM) or haswell (simulated HTM)")
	benchList := flag.String("bench", "", "comma-separated benchmark subset (default all)")
	threads := flag.Int("threads", 8, "maximum thread count")
	trials := flag.Int("trials", 3, "timed trials per configuration")
	warmup := flag.Int("warmup", 1, "warm-up runs per configuration")
	scale := flag.Float64("scale", 0, "workload scale factor (overrides -preset)")
	preset := flag.String("preset", "native", "input preset: test (0.25), simsmall (0.5), native (1.0), large (2.0)")
	seed := flag.Uint64("seed", 0x5EED, "workload input seed")
	summary := flag.Bool("summary", false, "print only the Figure 3 speedup table")
	csv := flag.Bool("csv", false, "emit the raw grid as CSV instead of tables")
	metrics := flag.Bool("metrics", false, "emit the per-trial metrics snapshot as JSON instead of tables")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON file of the run's event lifecycle")
	traceBuf := flag.Int("tracebuf", 1<<20, "trace ring-buffer capacity in events")
	resultDir := flag.String("resultdir", "results", "directory for per-run JSON result files (\"\" disables)")
	introspectAddr := flag.String("introspect", "", "serve /debug/cv/* live-introspection endpoints on this address (e.g. 127.0.0.1:6070)")
	quiet := flag.Bool("quiet", false, "suppress live progress")
	wakeFanout := flag.Int("wakefanout", 0, "NotifyAll wake fan-out (chains started by the notifier; 0 = default pacing)")
	serialWake := flag.Bool("serialwake", false, "ablation: disable the chained wake batch and post every broadcast waiter serially from the commit handler")
	semLanes := flag.Int("semlanes", 0, "waiter-lane count of every condvar node semaphore (0 = the semaphore's GOMAXPROCS default)")
	profile := flag.Bool("profile", false, "enable STM contention attribution (per-Var conflict counters; auto-on with -introspect)")
	sweepList := flag.String("sweep", "", "trajectory mode: comma-separated GOMAXPROCS list (e.g. \"1,2,4\"); writes a BENCH_*.json document and exits")
	benchOut := flag.String("benchout", "", "trajectory output path (default BENCH_<host>_<date>.json in the current directory)")
	flag.Parse()

	effScale := *scale
	if effScale <= 0 {
		switch *preset {
		case "test":
			effScale = 0.25
		case "simsmall":
			effScale = 0.5
		case "native":
			effScale = 1.0
		case "large":
			effScale = 2.0
		default:
			fmt.Fprintf(os.Stderr, "parsecbench: unknown preset %q\n", *preset)
			os.Exit(2)
		}
	}

	var m parsec.Machine
	var figure string
	switch *machine {
	case "westmere":
		m, figure = parsec.Westmere, "1"
	case "haswell":
		m, figure = parsec.Haswell, "2"
	default:
		fmt.Fprintf(os.Stderr, "parsecbench: unknown machine %q (want westmere or haswell)\n", *machine)
		os.Exit(2)
	}

	var benches []parsec.Benchmark
	if *benchList != "" {
		for _, name := range strings.Split(*benchList, ",") {
			b, err := parsec.ByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "parsecbench:", err)
				os.Exit(2)
			}
			benches = append(benches, b)
		}
	}

	cfg := harness.SweepConfig{
		Benchmarks: benches,
		Machine:    m,
		MaxThreads: *threads,
		Trials:     *trials,
		Warmup:     *warmup,
		Scale:      effScale,
		Seed:       *seed,
		// The per-run result files carry the full per-trial snapshots, so
		// collection is on whenever either JSON output is wanted.
		CollectMetrics: *metrics || *resultDir != "",
		CVOpts:         core.Options{WakeFanout: *wakeFanout, SerialWake: *serialWake, SemLanes: *semLanes},
	}
	if !*quiet {
		cfg.Progress = os.Stderr
	}
	if *tracePath != "" {
		cfg.Tracer = obs.NewTracer(*traceBuf)
		cfg.Tracer.Enable()
	}
	if *introspectAddr != "" {
		// The scrape surface needs live sources: per-trial CVStats (so
		// CollectMetrics goes on) and a tracer behind /debug/cv/trace
		// (a private ring when -trace didn't ask for a file).
		cfg.CollectMetrics = true
		if cfg.Tracer == nil {
			cfg.Tracer = obs.NewTracer(*traceBuf)
			cfg.Tracer.Enable()
		}
		cfg.Registry = registry.Default
		cfg.Registry.SetTracer(cfg.Tracer)
		srv, err := introspect.Start(introspect.Options{Addr: *introspectAddr, Registry: cfg.Registry})
		if err != nil {
			fmt.Fprintln(os.Stderr, "parsecbench:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "parsecbench: introspect: listening on %s\n", srv.Addr())
	}
	if *profile || *introspectAddr != "" {
		// Attribution costs one atomic load on already-slow conflict
		// paths, so the introspection server gets it for free — its
		// /debug/cv/conflicts endpoint is empty otherwise.
		stm.SetProfiling(true)
	}

	if *sweepList != "" {
		out := *benchOut
		if out == "" {
			host, _ := os.Hostname()
			out = bench.DefaultFilename(host, time.Now().UTC())
		}
		if err := runSweep(cfg, *sweepList, out, cfg.Progress); err != nil {
			fmt.Fprintln(os.Stderr, "parsecbench:", err)
			os.Exit(1)
		}
		return
	}

	sw := harness.Run(cfg)
	meta := bench.Collect()
	sw.Meta = &meta

	if *tracePath != "" {
		cfg.Tracer.Disable()
		if err := writeTrace(cfg.Tracer, *tracePath); err != nil {
			fmt.Fprintln(os.Stderr, "parsecbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "parsecbench: wrote trace (%d events) to %s\n",
			cfg.Tracer.Emitted(), *tracePath)
		// In-run causal-chain summary: reconstruct the wake DAGs straight
		// from the ring so a broken chain is caught at the source, then
		// point at the offline analyzer for the full critical-path report.
		dags := waketrace.Build(waketrace.FromObs(cfg.Tracer.Events()))
		hops, consumed, orphans := 0, 0, 0
		for _, d := range dags {
			hops += len(d.Hops)
			c, _ := d.Consumed()
			consumed += c
			orphans += len(d.Orphans)
		}
		fmt.Fprintf(os.Stderr, "parsecbench: wake chains: %d flow(s), %d hop(s), %d consumed, %d orphan(s)\n",
			len(dags), hops, consumed, orphans)
		if problems := waketrace.Check(dags); len(problems) != 0 {
			for _, p := range problems {
				fmt.Fprintln(os.Stderr, "parsecbench: wake-chain violation:", p)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "parsecbench: analyze: go run ./cmd/cvtrace %s\n", *tracePath)
	}
	if *resultDir != "" {
		path, err := writeResult(sw, *resultDir, *machine)
		if err != nil {
			fmt.Fprintln(os.Stderr, "parsecbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "parsecbench: wrote results to %s\n", path)
	}

	switch {
	case *csv:
		sw.WriteCSV(os.Stdout)
	case *metrics:
		if err := sw.WriteMetricsJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "parsecbench:", err)
			os.Exit(1)
		}
	case *summary:
		sw.WriteSpeedups(os.Stdout)
	default:
		fmt.Print(sw.Render(figure))
	}
}

// writeTrace exports the recorded events as a Chrome trace_event file
// (load it at chrome://tracing or https://ui.perfetto.dev).
func writeTrace(tr *obs.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeResult saves the sweep's metrics JSON under dir as
// bench-<machine>-<timestamp>.json and returns the path.
func writeResult(sw *harness.Sweep, dir, machine string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("bench-%s-%s.json",
		machine, time.Now().UTC().Format("20060102T150405Z")))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := sw.WriteMetricsJSON(f); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}
