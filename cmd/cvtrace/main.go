// Command cvtrace is the offline wake-propagation analyzer (DESIGN.md
// §15): point it at a Chrome trace dump (parsecbench -trace, cvstress
// -trace) or a flight-recorder snapshot (cvflight-*.json) and it
// reconstructs every causal wake DAG — which committed notify woke whom,
// through which hand-off chain — and reports the critical path per
// broadcast, slowest-hop attribution, fan-out shape, and stalls.
//
// Usage:
//
//	cvtrace [-format text|json] [-stall 1ms] [-top 10] [-check] [-strict] <dump.json>
//
// With -check, cvtrace only runs the structural self-validation (every
// non-root hop has a parent, depths are consistent, consumes match the
// batch) and exits non-zero on any violation — the verify.sh gate.
// Bounded captures retain the last N events, so flows that began before
// the window lack their root; those are skipped (and counted) unless
// -strict treats them as violations too.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/waketrace"
)

func main() {
	format := flag.String("format", "text", "output format: text or json")
	stall := flag.Duration("stall", time.Millisecond, "flag hops whose post-to-consume gap exceeds this (0 disables)")
	top := flag.Int("top", 10, "slowest-hop attribution entries")
	check := flag.Bool("check", false, "structural self-validation only; exit 1 on any violation")
	strict := flag.Bool("strict", false, "treat window-truncated flows (no root in the retained window) as violations instead of skipping them")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cvtrace [flags] <dump.json>\n\nAnalyze causal wake-propagation traces (Chrome trace or flight dump).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)

	evs, err := waketrace.LoadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cvtrace: %v\n", err)
		os.Exit(1)
	}
	dags := waketrace.Build(evs)
	// Bounded captures (trace rings, flight recorders) evict oldest-first,
	// so flows that began before the retention window lack their root;
	// skip those unless -strict says the capture was complete.
	var truncated []*waketrace.DAG
	if !*strict {
		dags, truncated = waketrace.SplitTruncated(dags)
	}

	if *check {
		problems := waketrace.Check(dags)
		if len(problems) > 0 {
			for _, p := range problems {
				fmt.Fprintf(os.Stderr, "cvtrace: check: %s\n", p)
			}
			fmt.Fprintf(os.Stderr, "cvtrace: %d violation(s) across %d flow(s)\n", len(problems), len(dags))
			os.Exit(1)
		}
		note := ""
		if len(truncated) > 0 {
			note = fmt.Sprintf(" (%d window-truncated flow(s) skipped)", len(truncated))
		}
		fmt.Printf("cvtrace: ok — %d flow(s), %d event(s), no structural violations%s\n", len(dags), len(evs), note)
		return
	}
	if len(truncated) > 0 {
		fmt.Fprintf(os.Stderr, "cvtrace: %d flow(s) began before the retention window; analyzing the %d complete one(s)\n", len(truncated), len(dags))
	}

	rep := waketrace.Analyze(dags, waketrace.Options{
		StallThreshold: *stall,
		TopHops:        *top,
	})
	switch *format {
	case "json":
		err = rep.WriteJSON(os.Stdout)
	case "text":
		err = rep.WriteText(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "cvtrace: unknown -format %q (want text or json)\n", *format)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cvtrace: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Problems) > 0 {
		os.Exit(1)
	}
}
