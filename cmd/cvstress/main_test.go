package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// buildOnce compiles the cvstress binary once per test run; the
// subprocess tests below exercise the real exit-code and signal paths,
// which in-process calls cannot.
var (
	buildOnce sync.Once
	binPath   string
	buildErr  error
)

func testBinary(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("subprocess test skipped in -short")
	}
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "cvstress-bin")
		if err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(dir, "cvstress")
		out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput()
		if err != nil {
			buildErr = err
			binPath = string(out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building cvstress: %v\n%s", buildErr, binPath)
	}
	return binPath
}

func exitCode(t *testing.T, err error) int {
	t.Helper()
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if !asExitError(err, &ee) {
		t.Fatalf("run failed without an exit code: %v", err)
	}
	return ee.ExitCode()
}

func asExitError(err error, target **exec.ExitError) bool {
	ee, ok := err.(*exec.ExitError)
	if ok {
		*target = ee
	}
	return ok
}

func TestBlackboxCleanRunWritesState(t *testing.T) {
	bin := testBinary(t)
	state := t.TempDir()
	out, err := exec.Command(bin, "-mode", "blackbox", "-seed", "1",
		"-duration", "400ms", "-goroutines", "4", "-faultrate", "0.05",
		"-state", state).CombinedOutput()
	if code := exitCode(t, err); code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out)
	}
	if !strings.Contains(string(out), "divergences=0") ||
		!strings.Contains(string(out), "parked_waiters=0") {
		t.Fatalf("missing clean summary:\n%s", out)
	}
	for _, f := range []string{"oracle.json", "journal.log"} {
		if _, err := os.Stat(filepath.Join(state, f)); err != nil {
			t.Fatalf("state file %s: %v", f, err)
		}
	}
}

func TestBlackboxCatchesInjectedLostWakeup(t *testing.T) {
	bin := testBinary(t)
	out, err := exec.Command(bin, "-mode", "blackbox", "-seed", "2",
		"-duration", "200ms", "-goroutines", "4", "-faultrate", "0",
		"-buglostwake").CombinedOutput()
	if code := exitCode(t, err); code != 2 {
		t.Fatalf("exit %d, want 2 (invariant violation), output:\n%s", code, out)
	}
	if !strings.Contains(string(out), "cond.lost-wakeup") {
		t.Fatalf("lost wakeup not named:\n%s", out)
	}
	if !strings.Contains(string(out), "replay: go run ./cmd/cvstress") {
		t.Fatalf("no replay line on failure:\n%s", out)
	}
}

func TestBlackboxSigkillThenRecover(t *testing.T) {
	bin := testBinary(t)
	state := t.TempDir()
	cmd := exec.Command(bin, "-mode", "blackbox", "-seed", "3",
		"-duration", "30s", "-goroutines", "4", "-faultrate", "0.05",
		"-state", state, "-checkpoint", "50ms")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Let the run checkpoint at least once, then kill it dead.
	journal := filepath.Join(state, "journal.log")
	deadline := time.Now().Add(10 * time.Second)
	for {
		if fi, err := os.Stat(journal); err == nil && fi.Size() > 0 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("journal never grew")
		}
		time.Sleep(20 * time.Millisecond)
	}
	time.Sleep(300 * time.Millisecond)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	out, err := exec.Command(bin, "-mode", "blackbox", "-seed", "3",
		"-duration", "300ms", "-goroutines", "4", "-faultrate", "0.05",
		"-state", state, "-recover").CombinedOutput()
	if code := exitCode(t, err); code != 0 {
		t.Fatalf("recovery exit %d, output:\n%s", code, out)
	}
	s := string(out)
	if !strings.Contains(s, "recovery: snapshot_seq=") ||
		!strings.Contains(s, "divergences=0") {
		t.Fatalf("recovery not clean:\n%s", s)
	}
	if !strings.Contains(s, "incarnation=1") {
		t.Fatalf("incarnation not advanced:\n%s", s)
	}
}

// TestBlackboxSigtermDrains is the satellite check that a SIGTERM
// mid-soak ends in a graceful CloseCtx drain with zero parked waiters.
func TestBlackboxSigtermDrains(t *testing.T) {
	bin := testBinary(t)
	cmd := exec.Command(bin, "-mode", "blackbox", "-seed", "4",
		"-duration", "30s", "-goroutines", "4", "-faultrate", "0.05")
	var out strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(700 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := exitCode(t, cmd.Wait()); code != 0 {
		t.Fatalf("exit %d after SIGTERM, output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "parked_waiters=0") {
		t.Fatalf("drain left parked waiters (or no summary):\n%s", out.String())
	}
}

func TestSetupErrorsExitOne(t *testing.T) {
	bin := testBinary(t)
	if out, err := exec.Command(bin, "-mode", "nosuchmode").CombinedOutput(); exitCode(t, err) != 1 {
		t.Fatalf("unknown mode: exit %d, output:\n%s", exitCode(t, err), out)
	}
	out, err := exec.Command(bin, "-mode", "blackbox", "-recover").CombinedOutput()
	if exitCode(t, err) != 1 {
		t.Fatalf("-recover without -state: exit %d, output:\n%s", exitCode(t, err), out)
	}
}
