package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// regressionSeeds mirrors regression_seeds.json at the repo root: the
// recorded past-failure (and gate) seeds, each replayed through the
// blackbox oracle harness. See the file's comment field for the
// maintenance protocol.
type regressionSeeds struct {
	Schema string `json:"schema"`
	Seeds  []struct {
		Seed       uint64  `json:"seed"`
		Mode       string  `json:"mode"`
		Faultrate  float64 `json:"faultrate"`
		DurationMS int     `json:"duration_ms"`
		Goroutines int     `json:"goroutines"`
		Reason     string  `json:"reason"`
	} `json:"seeds"`
}

// TestRegressionSeeds replays every recorded seed and requires a clean
// exit: a regression that re-opens a fixed bug fails its seed's subtest
// with the divergence output and the replay command.
func TestRegressionSeeds(t *testing.T) {
	bin := testBinary(t)
	raw, err := os.ReadFile(filepath.Join("..", "..", "regression_seeds.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rs regressionSeeds
	if err := json.Unmarshal(raw, &rs); err != nil {
		t.Fatalf("regression_seeds.json: %v", err)
	}
	if rs.Schema != "cv-regression-seeds/v1" {
		t.Fatalf("unknown schema %q", rs.Schema)
	}
	if len(rs.Seeds) == 0 {
		t.Fatal("no seeds recorded")
	}
	for _, s := range rs.Seeds {
		s := s
		t.Run(fmt.Sprintf("seed=%d", s.Seed), func(t *testing.T) {
			if s.Mode != "blackbox" {
				t.Fatalf("unsupported mode %q", s.Mode)
			}
			args := []string{
				"-mode", s.Mode,
				"-seed", fmt.Sprint(s.Seed),
				"-faultrate", fmt.Sprint(s.Faultrate),
				"-duration", (time.Duration(s.DurationMS) * time.Millisecond).String(),
				"-goroutines", fmt.Sprint(s.Goroutines),
			}
			out, err := exec.Command(bin, args...).CombinedOutput()
			if code := exitCode(t, err); code != 0 {
				t.Fatalf("seed %d regressed (%s): exit %d\n%s", s.Seed, s.Reason, code, out)
			}
			if !strings.Contains(string(out), "divergences=0") {
				t.Fatalf("seed %d: no clean summary:\n%s", s.Seed, out)
			}
		})
	}
}
