package main

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/facility"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/obs/introspect"
	"repro/internal/obs/registry"
	"repro/internal/oracle"
	"repro/internal/stm"
	"repro/internal/syncx"
)

// blackboxConfig carries the -mode blackbox flag set.
type blackboxConfig struct {
	goroutines  int
	seed        uint64
	faultrate   float64
	duration    time.Duration
	dumpDir     string
	stateDir    string
	checkpoint  time.Duration
	recoverRun  bool
	bugLostWake bool
}

// runBlackbox drives seeded, replayable action scripts against the
// facility layer (task queue, bounded queue, pool, barrier and broadcast
// rounds, under LockTM and Txn) while an expected-state oracle
// (internal/oracle) shadows every operation. With -state the oracle
// journals transitions and checkpoints snapshots so a SIGKILL leaves a
// verifiable post-mortem on disk; with -recover the previous run's state
// is audited first and the soak continues as the next incarnation. The
// exit code separates invariant violations (2) from stuck/hung facilities
// (3) and setup errors (1); DESIGN.md §14 documents the protocol.
func runBlackbox(cfg blackboxConfig) int {
	incarnation := uint64(0)
	if cfg.recoverRun {
		if cfg.stateDir == "" {
			fmt.Fprintln(os.Stderr, "cvstress: -recover requires -state")
			return exitSetup
		}
		_, rep, err := oracle.Recover(cfg.stateDir)
		switch {
		case errors.Is(err, oracle.ErrNoState):
			fmt.Println("recovery: no prior state (fresh start)")
		case err != nil:
			fmt.Fprintln(os.Stderr, "cvstress: recover:", err)
			return exitSetup
		default:
			fmt.Println(rep)
			if len(rep.Divergences) > 0 {
				for _, d := range rep.Divergences {
					fmt.Println(d)
				}
				fmt.Printf("blackbox: divergences=%d parked_waiters=0\n", len(rep.Divergences))
				return exitInvariant
			}
			incarnation = rep.Incarnation + 1
		}
	}

	orc := oracle.New(cfg.seed)
	orc.SetIncarnation(incarnation)
	var jnl *oracle.Journal
	stopCk := make(chan struct{})
	var ckWg sync.WaitGroup
	if cfg.stateDir != "" {
		if err := os.MkdirAll(cfg.stateDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "cvstress: state dir:", err)
			return exitSetup
		}
		snapPath := filepath.Join(cfg.stateDir, oracle.SnapshotFile)
		j, err := oracle.CreateJournal(filepath.Join(cfg.stateDir, oracle.JournalFile))
		if err != nil {
			fmt.Fprintln(os.Stderr, "cvstress: journal:", err)
			return exitSetup
		}
		orc.SetJournal(j)
		jnl = j
		// Truncating the journal invalidated any older snapshot (its Seq
		// would skip the new journal's records entirely), so write the
		// fresh model's snapshot before the first event: a SIGKILL at any
		// point now recovers a snapshot/journal pair of one incarnation.
		if err := orc.SaveAtomic(snapPath); err != nil {
			fmt.Fprintln(os.Stderr, "cvstress: snapshot:", err)
			return exitSetup
		}
		ckWg.Add(1)
		go func() {
			defer ckWg.Done()
			t := time.NewTicker(cfg.checkpoint)
			defer t.Stop()
			for {
				select {
				case <-stopCk:
					return
				case <-t.C:
					if err := orc.SaveAtomic(snapPath); err != nil {
						fmt.Fprintln(os.Stderr, "cvstress: checkpoint:", err)
					}
				}
			}
		}()
	}

	// Instrumented like chaos mode: tracer + flight recorder stand by so a
	// failure (or a signal-initiated drain) leaves a forensic dump.
	reg := registry.Default
	if reg.Tracer() == nil {
		tr := obs.NewTracer(1 << 16)
		tr.Enable()
		reg.SetTracer(tr)
	}
	rec := introspect.NewRecorder(cfg.dumpDir, reg, 4096)

	code := exitOK
	parked := 0
	for _, kind := range []facility.Kind{facility.LockTM, facility.Txn} {
		c, w := runBlackboxKind(kind, orc, incarnation, cfg, reg, rec)
		code = worseCode(code, c)
		parked += w
	}

	if cfg.stateDir != "" {
		close(stopCk)
		ckWg.Wait()
		if err := orc.SaveAtomic(filepath.Join(cfg.stateDir, oracle.SnapshotFile)); err != nil {
			fmt.Fprintln(os.Stderr, "cvstress: final snapshot:", err)
			code = worseCode(code, exitSetup)
		}
		if err := jnl.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "cvstress: journal:", err)
			code = worseCode(code, exitSetup)
		}
	}

	divs := orc.Divergences()
	for _, d := range divs {
		fmt.Println(d)
	}
	if len(divs) > 0 {
		code = worseCode(code, exitInvariant)
	}
	if parked > 0 {
		code = worseCode(code, exitStuck)
	}
	tot := orc.Totals()
	fmt.Printf("blackbox: incarnation=%d tasks=%d items=%d cond_rounds=%d pool_rounds=%d barrier_rounds=%d\n",
		incarnation, tot.TasksCompleted, tot.ItemsGot, tot.CondRounds, tot.PoolRounds, tot.BarrierRounds)
	fmt.Printf("blackbox: divergences=%d parked_waiters=%d\n", len(divs), parked)
	if code != exitOK || stopFlag.Load() {
		tag := "blackbox-failure"
		if code == exitOK {
			tag = "signal-drain"
		}
		if path, err := rec.Trigger(tag, map[string]any{
			"seed": cfg.seed, "incarnation": incarnation, "exit": code,
		}); err == nil && path != "" {
			fmt.Printf("flight dump: %s\n", path)
		}
	}
	return code
}

// runBlackboxKind soaks one system and returns (exit code, parked
// waiters left behind after the drain).
func runBlackboxKind(kind facility.Kind, orc *oracle.Oracle, incarnation uint64, cfg blackboxConfig, reg *registry.Registry, rec *introspect.Recorder) (int, int) {
	e := stm.NewEngine(stm.Config{Name: "bb/" + kind.Short()})
	var in *fault.Injector
	if cfg.faultrate > 0 {
		// Each incarnation arms a derived seed: deterministic and
		// replayable per restart, but not a replay of the schedule the
		// previous incarnation crashed under.
		in = chaosRules(fault.DeriveSeed(cfg.seed, incarnation), cfg.faultrate)
		e.SetFault(in)
		in.Arm()
		defer in.Disarm()
	}
	e.SetTracer(reg.Tracer())
	introspect.ArmHealthDump(e, rec)
	label := "bb" + kind.Short()
	tk := &facility.Toolkit{Kind: kind, Engine: e, Label: label, Journal: orc}

	tqKey := label + ".taskq" // must match the toolkit's journal binding key
	qKey := label + ".q"
	poolKey := label + ".pool"
	barKey := label + ".barrier"
	cvKey := label + ".cv"

	deadline := time.Now().Add(cfg.duration)
	actors := cfg.goroutines
	if actors < 2 {
		actors = 2
	}
	producers := actors / 2

	const poolWorkers = 3
	const barParties = 3
	tq := facility.NewTaskQueue(tk, 4)
	q := facility.NewQueue[uint64](tk, 8)
	pool := facility.NewPool(tk, poolWorkers)
	bar := facility.NewBarrier(tk, barParties)

	var tasksRun atomic.Int64
	var itemSeq atomic.Uint64
	var putOK, got atomic.Int64

	// Producers: each actor replays a seeded action script — the draw
	// sequence is a pure function of (seed, incarnation, kind, actor), so
	// a failing run's submissions are reproduced by the replay command.
	var prodWg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		prodWg.Add(1)
		go func() {
			defer prodWg.Done()
			actorSeed := fault.DeriveSeed(cfg.seed, incarnation) ^ uint64(kind)<<32 ^ uint64(p)
			rng := rand.New(rand.NewSource(int64(actorSeed)))
			for running(deadline) {
				switch rng.Intn(4) {
				case 0:
					tq.Submit(func() { tasksRun.Add(1) })
				case 1:
					batch := make([]func(), 1+rng.Intn(4))
					for i := range batch {
						batch[i] = func() { tasksRun.Add(1) }
					}
					tq.SubmitBatch(batch)
				default:
					id := itemSeq.Add(1)
					orc.ItemPutStart(qKey, id)
					ok := q.Put(id)
					orc.ItemPutDone(qKey, id, ok)
					if ok {
						putOK.Add(1)
					}
				}
				if rng.Intn(8) == 0 {
					time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
				}
			}
		}()
	}

	var consWg sync.WaitGroup
	for c := 0; c < producers; c++ {
		consWg.Add(1)
		go func() {
			defer consWg.Done()
			for {
				id, ok := q.Get()
				if !ok {
					return
				}
				orc.ItemGot(qKey, id)
				got.Add(1)
			}
		}()
	}

	// Pool driver: every generation must run exactly once on each worker.
	var poolWg sync.WaitGroup
	var poolGen uint64
	poolWg.Add(1)
	go func() {
		defer poolWg.Done()
		for running(deadline) {
			poolGen++
			gen := poolGen
			orc.PoolRunStart(poolKey, gen, poolWorkers)
			pool.Run(func(w int) { orc.PoolWorkerRan(poolKey, gen, w) })
			orc.PoolRunEnd(poolKey, gen)
		}
	}()

	// Barrier party: a fixed round count (not the deadline) bounds the
	// loop, so every party makes the same number of arrivals and none is
	// stranded mid-round by the clock.
	const barRounds = 40
	orc.BarrierInit(barKey, barParties)
	var barWg sync.WaitGroup
	for b := 0; b < barParties; b++ {
		barWg.Add(1)
		go func() {
			defer barWg.Done()
			for r := 0; r < barRounds; r++ {
				orc.BarrierArrive(barKey)
				bar.Arrive()
				orc.BarrierReturn(barKey)
			}
		}()
	}

	// Broadcast rounds on the main goroutine: park a party behind a
	// generation predicate, flip, wake the batch with one NotifyAll, and
	// have the oracle count the resumes.
	cv := tk.NewCondVar()
	var cm syncx.Mutex
	cgen := 0
	condRounds := 0
	for round := uint64(1); running(deadline); round++ {
		const parties = 6
		cm.Lock()
		start := cgen
		cm.Unlock()
		orc.CondRoundStart(cvKey, round, parties)
		var wg sync.WaitGroup
		wg.Add(parties)
		for w := 0; w < parties; w++ {
			go func() {
				defer wg.Done()
				cm.Lock()
				for cgen == start {
					cv.WaitLocked(&cm)
				}
				cm.Unlock()
				orc.CondWoken(cvKey, round)
			}()
		}
		// The generation is read and the wait entered under one lock
		// hold, so once Len reaches the party size every waiter is
		// enqueued behind the old generation.
		waitUntil(func() bool { return cv.Len() >= parties }, 5*time.Second)
		cm.Lock()
		cgen++
		cm.Unlock()
		if cfg.bugLostWake {
			// Intentional lost-wakeup bug: wake one waiter short of the
			// batch. The oracle's round accounting must catch the
			// stranded waiter (the verify.sh negative gate asserts it).
			cv.NotifyN(nil, parties-1)
		} else {
			cv.NotifyAll(nil)
		}
		if awaitOrStuck(3*time.Second, wg.Wait) {
			orc.CondRoundEnd(cvKey, round, false)
		} else {
			orc.CondRoundEnd(cvKey, round, true) // records the lost wake-up
			cv.NotifyAll(nil)                    // release stragglers so the run can exit and report
			wg.Wait()
		}
		condRounds++
	}

	// Quiesce — the graceful drain (this same path serves SIGTERM): stop
	// submitting, drain the task queue, drain and close the bounded
	// queue, shut the pool down, and only then count parked waiters.
	stuckAt := ""
	prodWg.Wait()
	if !awaitOrStuck(10*time.Second, tq.Drain) {
		stuckAt = "task-queue drain"
	} else {
		orc.TaskQueueDrained(tqKey)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := tq.CloseCtx(ctx); err != nil {
			stuckAt = "task-queue close"
		}
		cancel()
	}
	if stuckAt == "" {
		// Producers have stopped, so putOK is final; wait for the
		// consumers to catch up before closing the queue.
		if !waitUntil(func() bool { return got.Load() >= putOK.Load() }, 10*time.Second) {
			stuckAt = "queue drain"
		} else {
			q.Close()
			if !awaitOrStuck(10*time.Second, consWg.Wait) {
				stuckAt = "queue consumers"
			} else {
				orc.QueueDrained(qKey)
			}
		}
	}
	if stuckAt == "" {
		if !awaitOrStuck(10*time.Second, poolWg.Wait) {
			stuckAt = "pool driver"
		} else {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			if err := pool.CloseCtx(ctx); err != nil {
				stuckAt = "pool close"
			}
			cancel()
		}
	}
	if stuckAt == "" && !awaitOrStuck(20*time.Second, barWg.Wait) {
		stuckAt = "barrier rounds"
	}

	waiters := tk.Waiters()
	fmt.Printf("%-22s: tasks=%d items=%d/%d cond_rounds=%d pool_rounds=%d barrier_rounds=%d faults=%d waiters=%d\n",
		kind, tasksRun.Load(), putOK.Load(), got.Load(), condRounds, poolGen, barRounds,
		in.FiredTotal(), waiters)
	if stuckAt != "" {
		fmt.Printf("%-22s: STUCK in %s (timeout waiting for the facility to quiesce)\n", kind, stuckAt)
		return exitStuck, waiters
	}
	return exitOK, waiters
}
