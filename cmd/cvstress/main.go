// Command cvstress validates the condition-variable implementations under
// sustained load. It has three modes:
//
//	-mode spurious   park waiters, notify exactly k of n, and verify that
//	                 exactly k wake (the TM condvar's no-spurious-wake-up
//	                 guarantee, Section 3.4); with -baseline it runs the
//	                 pthread-style condvar with injected spurious wake-ups
//	                 instead and reports how many fired.
//	-mode wakeup     hammer a bounded buffer with producers/consumers and
//	                 verify no item is lost or duplicated (lost-wake-up
//	                 detector) across all three systems.
//	-mode storm      drive heavy notify traffic from transactions that
//	                 abort with high probability, verifying that only
//	                 committed transactions ever wake a waiter.
//
//	-mode timed      hammer the timeout/notify race of WaitLockedTimeout:
//	                 every notify that claims a waiter must be observed by
//	                 a wait returning true, and no wait may report a
//	                 notification nobody sent.
//
//	-mode chaos      duration-bounded soak with the deterministic fault
//	                 injector armed across every hook point (forced
//	                 aborts, capacity aborts, delayed wake-ups and
//	                 lost-wakeup windows): a bounded-buffer conservation
//	                 workload plus timed- and context-cancellation race
//	                 probes run under LockTM and Txn, followed by a
//	                 sem-layer lane-conservation probe (timed/cancel
//	                 losers racing PostAll on a forced 4-lane
//	                 semaphore). -seed fixes the
//	                 injected fault sequence (the injector's decisions are
//	                 a pure function of seed, point and arrival index);
//	                 -faultrate and -duration bound the storm. On failure
//	                 the exact replay command is printed. -trace writes
//	                 the run's Chrome trace, validates its causal wake
//	                 chains in-run, and prints the cvtrace command that
//	                 analyzes it offline; failure flight dumps carry the
//	                 trace path in their detail block.
//
//	-mode blackbox   seeded action scripts drive the facility layer (task
//	                 queue, bounded queue, pool, barrier, broadcast
//	                 rounds) while an expected-state oracle
//	                 (internal/oracle) shadows every operation. -state
//	                 persists the oracle's journal and periodic snapshots
//	                 for SIGKILL crash testing (cmd/crashtest); -recover
//	                 audits the previous run's state first; -buglostwake
//	                 injects an intentional lost-wakeup bug the gate must
//	                 catch. DESIGN.md §14.
//
// Exit status taxonomy (all modes):
//
//	0  clean run
//	1  setup error (unknown mode, bad flags, unusable state dir)
//	2  invariant violation / oracle divergence
//	3  timeout: a facility hung or a waiter stayed parked through the drain
//
// Every non-zero exit prints a "replay:" line naming the exact command
// that reproduces the run. SIGTERM/SIGINT initiate a graceful drain: the
// duration-bounded loops end early, the facilities are drained and
// closed, and the run exits 0 with its parked-waiter count reported.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/facility"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/obs/introspect"
	"repro/internal/obs/registry"
	"repro/internal/pthreadcv"
	"repro/internal/sem"
	"repro/internal/stm"
	"repro/internal/syncx"
	"repro/internal/waketrace"
)

// Exit codes (see the package comment).
const (
	exitOK        = 0
	exitSetup     = 1
	exitInvariant = 2
	exitStuck     = 3
)

// worseCode picks the more severe of two exit codes: invariant
// violations outrank stuck waiters, which outrank setup errors.
func worseCode(a, b int) int {
	rank := func(c int) int {
		switch c {
		case exitInvariant:
			return 3
		case exitStuck:
			return 2
		case exitSetup:
			return 1
		}
		return 0
	}
	if rank(b) > rank(a) {
		return b
	}
	return a
}

// stopFlag is set by the first SIGTERM/SIGINT: duration-bounded loops
// treat it as an early deadline, so the run drains gracefully instead of
// dying mid-workload.
var stopFlag atomic.Bool

// running reports whether a duration-bounded soak loop should continue.
func running(deadline time.Time) bool {
	return !stopFlag.Load() && time.Now().Before(deadline)
}

// waitUntil polls cond until it holds or d elapses.
func waitUntil(cond func() bool, d time.Duration) bool {
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
	return true
}

// awaitOrStuck runs wait in the background and reports false if it has
// not returned within d — the caller treats that as a hung facility.
func awaitOrStuck(d time.Duration, wait func()) bool {
	done := make(chan struct{})
	go func() { wait(); close(done) }()
	select {
	case <-done:
		return true
	case <-time.After(d):
		return false
	}
}

func main() {
	mode := flag.String("mode", "spurious", "spurious | wakeup | storm | timed | chaos | blackbox")
	goroutines := flag.Int("goroutines", 8, "concurrency level")
	iters := flag.Int("iters", 2000, "iterations / items per goroutine")
	baseline := flag.Bool("baseline", false, "spurious mode: use the pthread baseline with injection")
	seed := flag.Uint64("seed", 0xC4A05, "chaos/blackbox mode: workload + fault injector seed")
	faultrate := flag.Float64("faultrate", 0.2, "chaos/blackbox mode: per-hook-point injection probability (0 disables)")
	duration := flag.Duration("duration", 2*time.Second, "chaos/blackbox mode: soak time per system")
	introspectAddr := flag.String("introspect", "", "serve /debug/cv/* live-introspection endpoints on this address (e.g. 127.0.0.1:0)")
	dumpDir := flag.String("dumpdir", "", "chaos/blackbox mode: flight-recorder dump directory (default: system temp)")
	tracePath := flag.String("trace", "", "chaos mode: write the run's Chrome trace here and validate its wake chains (analyze with cmd/cvtrace)")
	traceBuf := flag.Int("tracebuf", 1<<16, "chaos mode: tracer ring-buffer capacity in events")
	stateDir := flag.String("state", "", "blackbox mode: oracle state directory (journal + periodic snapshots) for crash testing")
	checkpoint := flag.Duration("checkpoint", 100*time.Millisecond, "blackbox mode: snapshot interval when -state is set")
	recoverRun := flag.Bool("recover", false, "blackbox mode: audit the previous run's -state before soaking as the next incarnation")
	bugLostWake := flag.Bool("buglostwake", false, "blackbox mode: inject an intentional lost-wakeup bug (broadcasts wake one waiter short) that the oracle gate must catch")
	flag.Parse()

	// First SIGTERM/SIGINT drains gracefully; a second one gets the
	// default (fatal) disposition back.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		s := <-sigc
		fmt.Fprintf(os.Stderr, "cvstress: %v: draining\n", s)
		stopFlag.Store(true)
		signal.Stop(sigc)
	}()

	if *introspectAddr != "" {
		srv, err := introspect.Start(introspect.Options{Addr: *introspectAddr, DumpDir: *dumpDir})
		if err != nil {
			fmt.Fprintln(os.Stderr, "cvstress:", err)
			os.Exit(exitSetup)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "cvstress: introspect: listening on %s\n", srv.Addr())
	}

	code := exitOK
	fail := func(ok bool) {
		if !ok {
			code = exitInvariant
		}
	}
	switch *mode {
	case "spurious":
		fail(runSpurious(*goroutines, *baseline))
	case "wakeup":
		fail(runWakeup(*goroutines, *iters))
	case "storm":
		fail(runStorm(*goroutines, *iters))
	case "timed":
		fail(runTimed(*iters))
	case "chaos":
		code = runChaos(*goroutines, *seed, *faultrate, *duration, *dumpDir, *tracePath, *traceBuf)
	case "blackbox":
		code = runBlackbox(blackboxConfig{
			goroutines:  *goroutines,
			seed:        *seed,
			faultrate:   *faultrate,
			duration:    *duration,
			dumpDir:     *dumpDir,
			stateDir:    *stateDir,
			checkpoint:  *checkpoint,
			recoverRun:  *recoverRun,
			bugLostWake: *bugLostWake,
		})
	default:
		fmt.Fprintf(os.Stderr, "cvstress: unknown mode %q\n", *mode)
		os.Exit(exitSetup)
	}
	if code != exitOK {
		replay := fmt.Sprintf("go run ./cmd/cvstress -mode %s -seed %d -goroutines %d", *mode, *seed, *goroutines)
		switch *mode {
		case "chaos", "blackbox":
			replay += fmt.Sprintf(" -faultrate %g -duration %s", *faultrate, *duration)
			if *bugLostWake {
				replay += " -buglostwake"
			}
		default:
			replay += fmt.Sprintf(" -iters %d", *iters)
		}
		fmt.Printf("replay: %s\n", replay)
		fmt.Printf("RESULT: FAIL (exit %d)\n", code)
		os.Exit(code)
	}
	fmt.Println("RESULT: OK")
}

func runSpurious(n int, baseline bool) bool {
	if baseline {
		inj := pthreadcv.NewSpuriousInjector(1.0, 42)
		inj.MaxDelay = 200 * time.Microsecond
		var st pthreadcv.Stats
		c := pthreadcv.New(inj)
		c.SetStats(&st)
		var m syncx.Mutex
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				m.Lock()
				// cvlint:ignore waitloop harness measures raw spurious wake-ups, a loop would hide them
				c.Wait(&m)
				m.Unlock()
			}()
		}
		wg.Wait() // all return via injected spurious wake-ups
		fmt.Printf("baseline: %d waits, %d spurious wake-ups (expected: all)\n",
			n, st.SpuriousWakes.Load())
		return st.SpuriousWakes.Load() == int64(n)
	}

	e := stm.NewEngine(stm.Config{})
	cv := core.New(e, core.Options{})
	var m syncx.Mutex
	k := n / 2
	var woken atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Lock()
			// cvlint:ignore waitloop harness counts exact wake-ups, a predicate loop would mask extras
			cv.WaitLocked(&m)
			m.Unlock()
			woken.Add(1)
		}()
	}
	for cv.Len() != n {
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < k; i++ {
		cv.NotifyOne(nil)
	}
	time.Sleep(200 * time.Millisecond) // grace period for any spurious wake
	got := woken.Load()
	fmt.Printf("tmcondvar: parked %d, notified %d, woke %d (must equal)\n", n, k, got)
	ok := got == int64(k)
	cv.NotifyAll(nil)
	wg.Wait()
	return ok
}

func runWakeup(goroutines, iters int) bool {
	ok := true
	for _, kind := range facility.Kinds {
		tk := &facility.Toolkit{Kind: kind}
		if kind != facility.LockPthread {
			tk.Engine = stm.NewEngine(stm.Config{})
		}
		q := facility.NewQueue[int](tk, 16)
		producers := goroutines / 2
		if producers == 0 {
			producers = 1
		}
		consumers := producers
		total := producers * iters
		seen := make([]atomic.Int32, total)
		var consumed atomic.Int64
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			p := p
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					q.Put(p*iters + i)
				}
			}()
		}
		for c := 0; c < consumers; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					x, okGet := q.Get()
					if !okGet {
						return
					}
					seen[x].Add(1)
					consumed.Add(1)
				}
			}()
		}
		go func() {
			for consumed.Load() < int64(total) {
				time.Sleep(time.Millisecond)
			}
			q.Close()
		}()
		wg.Wait()
		bad := 0
		for i := range seen {
			if seen[i].Load() != 1 {
				bad++
			}
		}
		fmt.Printf("%-22s: %d items, %d lost/duplicated\n", kind, total, bad)
		if bad != 0 {
			ok = false
		}
	}
	return ok
}

func runTimed(iters int) bool {
	e := stm.NewEngine(stm.Config{})
	cv := core.New(e, core.Options{})
	var m syncx.Mutex
	lost, spurious := 0, 0
	for i := 0; i < iters; i++ {
		res := make(chan bool, 1)
		go func() {
			m.Lock()
			// cvlint:ignore waitloop harness probes the timeout/notify race one-shot by design
			res <- cv.WaitLockedTimeout(&m, time.Duration(i%5)*100*time.Microsecond)
		}()
		time.Sleep(time.Duration(i%7) * 50 * time.Microsecond)
		notified := cv.NotifyOne(nil)
		got := <-res
		m.Unlock()
		if notified && !got {
			lost++
		}
		if !notified && got {
			spurious++
		}
	}
	fmt.Printf("timed: %d races, %d lost wake-ups, %d spurious (must be 0/0)\n",
		iters, lost, spurious)
	return lost == 0 && spurious == 0
}

func runStorm(goroutines, iters int) bool {
	e := stm.NewEngine(stm.Config{})
	cv := core.New(e, core.Options{})
	var m syncx.Mutex
	var woken atomic.Int64
	var committedNotifies atomic.Int64
	var wg sync.WaitGroup

	waiters := goroutines
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Lock()
			// cvlint:ignore waitloop harness counts exact wake-ups, a predicate loop would mask extras
			cv.WaitLocked(&m)
			m.Unlock()
			woken.Add(1)
		}()
	}
	for cv.Len() != waiters {
		time.Sleep(time.Millisecond)
	}

	// Notify storm: most transactions cancel after notifying; only the
	// committed ones may wake anyone.
	errAbort := errors.New("storm abort")
	i := 0
	for committedNotifies.Load() < int64(waiters) {
		i++
		abort := i%7 != 0
		found := false
		err := e.Atomic(func(tx *stm.Tx) {
			found = cv.NotifyOne(tx)
			if abort {
				tx.Cancel(errAbort)
			}
		})
		if err == nil && found {
			committedNotifies.Add(1)
		}
	}
	wg.Wait()
	got := woken.Load()
	fmt.Printf("storm: %d committed notifies, %d wakes (must equal), %d aborted notify txns\n",
		committedNotifies.Load(), got, e.Stats.ExplicitAborts.Load())
	return got == committedNotifies.Load()
}

// chaosRules builds the injection plan for one chaos soak: forced
// conflicts at transaction begin and orec acquisition, simulated
// capacity aborts at pre-commit, and delayed wake-ups / widened
// lost-wakeup windows at every semaphore and condvar hook point.
func chaosRules(seed uint64, rate float64) *fault.Injector {
	stall := fault.Rule{Rate: rate, Action: fault.ActDelay, Delay: 100 * time.Microsecond}
	return fault.New(seed).
		Set(fault.TxBegin, fault.Rule{Rate: rate / 2, Action: fault.ActAbort}).
		Set(fault.OrecAcquire, fault.Rule{Rate: rate, Action: fault.ActAbort}).
		Set(fault.PreCommit, fault.Rule{Rate: rate / 2, Action: fault.ActCapacity}).
		Set(fault.SemPost, stall).
		Set(fault.SemPark, stall).
		Set(fault.CVEnqueue, stall).
		Set(fault.CVNotify, stall)
}

// runChaos soaks the TM-condvar systems under deterministic fault
// injection: a bounded-buffer conservation workload (no item lost or
// duplicated, checked by count, sum and sum-of-squares) with concurrent timed-wait and
// context-cancellation race probes, all on the same engine the injector
// is attacking — then a striped-semaphore lane-conservation probe on
// the raw sem layer (runLaneChaos).
func runChaos(goroutines int, seed uint64, rate float64, dur time.Duration, dumpDir, tracePath string, traceBuf int) int {
	// Chaos always runs fully instrumented: every engine, condvar and
	// fault point registers into the process registry (scraped live when
	// -introspect is up), a tracer records the event lifecycle, and a
	// flight recorder stands by so a failure leaves a forensic dump next
	// to the replay line.
	reg := registry.Default
	if reg.Tracer() == nil {
		tr := obs.NewTracer(traceBuf)
		tr.Enable()
		reg.SetTracer(tr)
	}
	// Contention attribution is part of the instrumented-by-default set:
	// the deliberately-contended chaos.hot probe below must rank first on
	// /debug/cv/conflicts (the verify.sh attribution smoke asserts it).
	stm.SetProfiling(true)
	rec := introspect.NewRecorder(dumpDir, reg, 4096)
	code := exitOK
	for _, kind := range []facility.Kind{facility.LockTM, facility.Txn} {
		code = worseCode(code, runChaosKind(kind, goroutines, seed, rate, dur, reg, rec))
	}
	code = worseCode(code, runLaneChaos(goroutines, seed, rate, dur))
	// -trace: dump the ring for offline analysis and validate the wake
	// chains in-run. The ring keeps the last N events, so flows that
	// began before the window lack their root — those are truncation,
	// not corruption, and are skipped (cvtrace -check does the same).
	detail := map[string]any{"seed": seed, "faultrate": rate, "goroutines": goroutines}
	if tracePath != "" {
		tr := reg.Tracer()
		if err := func() error {
			f, err := os.Create(tracePath)
			if err != nil {
				return err
			}
			if err := tr.WriteChromeTrace(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}(); err != nil {
			fmt.Fprintln(os.Stderr, "cvstress: trace write failed:", err)
			code = worseCode(code, exitSetup)
		} else {
			detail["trace"] = tracePath
			complete, truncated := waketrace.SplitTruncated(
				waketrace.Build(waketrace.FromObs(tr.Events())))
			if problems := waketrace.Check(complete); len(problems) != 0 {
				for _, p := range problems {
					fmt.Fprintln(os.Stderr, "cvstress: wake-chain violation:", p)
				}
				code = worseCode(code, exitInvariant)
			}
			fmt.Printf("trace: %s (%d wake flows, %d truncated at window start)\n",
				tracePath, len(complete), len(truncated))
			fmt.Printf("analyze: go run ./cmd/cvtrace -check %s\n", tracePath)
		}
	}
	if code != exitOK {
		if path, err := rec.Trigger("chaos-failure", detail); err == nil && path != "" {
			fmt.Printf("flight dump: %s\n", path)
			fmt.Printf("analyze: go run ./cmd/cvtrace -check %s\n", path)
		} else if err != nil {
			fmt.Fprintln(os.Stderr, "cvstress: flight dump failed:", err)
		}
	}
	return code
}

func runChaosKind(kind facility.Kind, goroutines int, seed uint64, rate float64, dur time.Duration, reg *registry.Registry, rec *introspect.Recorder) int {
	e := stm.NewEngine(stm.Config{Name: "chaos/" + kind.Short()})
	in := chaosRules(seed, rate)
	e.SetFault(in)
	in.Arm()
	defer in.Disarm()
	e.SetTracer(reg.Tracer())
	e.RegisterMetrics(reg)
	in.RegisterMetrics(reg, registry.Labels{"engine": e.Name()})
	introspect.ArmHealthDump(e, rec)
	cvStats := &core.CVStats{}
	cvStats.RegisterMetrics(reg, registry.Labels{"engine": e.Name()})
	tk := &facility.Toolkit{Kind: kind, Engine: e, CVStats: cvStats,
		Introspect: reg, IntrospectPrefix: e.Name()}

	deadline := time.Now().Add(dur)

	// Conservation workload: producers feed a bounded buffer until the
	// deadline; every item must come out exactly once (count, sum and
	// sum-of-squares all conserved).
	q := facility.NewQueue[int](tk, 8)
	producers := goroutines / 2
	if producers == 0 {
		producers = 1
	}
	var produced, consumed atomic.Int64
	var prodSum, consSum atomic.Int64
	var prodSq, consSq atomic.Int64
	var prodWg, consWg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		prodWg.Add(1)
		go func() {
			defer prodWg.Done()
			for i := 0; running(deadline); i++ {
				x := p<<24 | i
				q.Put(x)
				produced.Add(1)
				prodSum.Add(int64(x))
				prodSq.Add(int64(x) * int64(x) % (1 << 31))
			}
		}()
	}
	for c := 0; c < producers; c++ {
		consWg.Add(1)
		go func() {
			defer consWg.Done()
			for {
				x, okGet := q.Get()
				if !okGet {
					return
				}
				consumed.Add(1)
				consSum.Add(int64(x))
				consSq.Add(int64(x) * int64(x) % (1 << 31))
			}
		}()
	}

	// Attribution probe: a few goroutines hammer one named Var with
	// read-modify-write transactions while the injector stalls the orec
	// hook points underneath, so this Var draws conflicts by design. It
	// gives /debug/cv/conflicts a known-hot row ("chaos.hot") that the
	// verify.sh attribution smoke asserts ranks on the table.
	hot := stm.NewVarNamed(e, "chaos.hot", 0)
	var hotWg sync.WaitGroup
	for h := 0; h < 4; h++ {
		hotWg.Add(1)
		go func() {
			defer hotWg.Done()
			for running(deadline) {
				e.MustAtomic(func(tx *stm.Tx) {
					tx.SetLabel("chaos.hot-probe")
					stm.Write(tx, hot, stm.Read(tx, hot)+1)
				})
			}
		}()
	}

	// Race probes on the same injected engine: the timed-wait race and
	// the cancellation race, each holding the lost/spurious invariant.
	cv := core.New(e, tk.CVOpts)
	cv.SetStats(cvStats)
	cv.RegisterIntrospect(reg, e.Name()+"/probe")
	// Broadcast probe state: a separate condvar with a wide wait set, woken
	// by single chained NotifyAll batches while the injector stalls the
	// post/park/notify hook points underneath.
	bcv := core.New(e, tk.CVOpts)
	bcv.SetStats(cvStats)
	var bm syncx.Mutex
	bgen := 0
	var broadcasts, bwoken int
	var bstuck int
	var m syncx.Mutex
	var races, lost, spurious int
	var cancels, cancelRaces int
	for i := 0; running(deadline); i++ {
		// Timed probe (every iteration): notify vs a short timeout.
		res := make(chan bool, 1)
		go func(d time.Duration) {
			m.Lock()
			// cvlint:ignore waitloop harness probes the timeout/notify race one-shot by design
			got := cv.WaitLockedTimeout(&m, d)
			m.Unlock()
			res <- got
		}(time.Duration(i%5) * 100 * time.Microsecond)
		time.Sleep(time.Duration(i%7) * 50 * time.Microsecond)
		notified := cv.NotifyOne(nil)
		got := <-res
		races++
		if notified && !got {
			lost++
		}
		if !notified && got {
			spurious++
		}

		// Cancellation probe: cancel races a notify; a notifier that
		// claimed the waiter must be observed, a cancel that won must
		// leave nothing behind.
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			m.Lock()
			// cvlint:ignore waitloop harness probes the cancel/notify race one-shot by design
			got := cv.WaitLockedCtx(&m, ctx)
			m.Unlock()
			res <- got
		}()
		for cv.Len() == 0 && time.Now().Before(deadline.Add(time.Second)) {
			time.Sleep(10 * time.Microsecond)
		}
		var found bool
		var pwg sync.WaitGroup
		pwg.Add(2)
		go func() { defer pwg.Done(); found = cv.NotifyOne(nil) }()
		go func() { defer pwg.Done(); cancel() }()
		pwg.Wait()
		got = <-res
		cancelRaces++
		if found != got {
			if found {
				lost++
			} else {
				spurious++
			}
		}
		if !got {
			cancels++
		}

		// Broadcast probe (every 16th iteration): park a wide wait set
		// behind a generation predicate, flip the generation, and wake the
		// whole batch with one NotifyAll. The generation is read and the
		// wait entered under one lock hold, so every waiter either parks
		// before the flip (and must be in the batch) or observes the new
		// generation and never sleeps — any waiter still parked after the
		// broadcast is a lost wake-up in the chained hand-off.
		if i%16 == 5 {
			const wide = 48
			start := bgen
			resumed := make(chan struct{})
			var bwg sync.WaitGroup
			bwg.Add(wide)
			for w := 0; w < wide; w++ {
				go func() {
					defer bwg.Done()
					bm.Lock()
					for bgen == start {
						bcv.WaitLocked(&bm)
					}
					bm.Unlock()
				}()
			}
			for bcv.Len() < wide && time.Now().Before(deadline.Add(time.Second)) {
				time.Sleep(10 * time.Microsecond)
			}
			bm.Lock()
			bgen++
			bm.Unlock()
			bwoken += bcv.NotifyAll(nil)
			broadcasts++
			go func() { bwg.Wait(); close(resumed) }()
			select {
			case <-resumed:
			case <-time.After(5 * time.Second):
				bstuck++ // a waiter never resumed: lost broadcast wake
			}
		}
	}

	// Drain: wait for the producers to retire first — one may still be
	// blocked in Put past the deadline with its item not yet counted —
	// then for consumption to catch up, and only then close the queue.
	hotWg.Wait()
	prodWg.Wait()
	drained := waitUntil(func() bool { return consumed.Load() >= produced.Load() }, 30*time.Second)
	q.Close()
	if drained {
		consWg.Wait()
	}

	conserved := produced.Load() == consumed.Load() &&
		prodSum.Load() == consSum.Load() && prodSq.Load() == consSq.Load()
	kindOK := conserved && lost == 0 && spurious == 0 && bstuck == 0
	fmt.Printf("%-22s: %d items conserved=%v | timed=%d cancel=%d (cancelled=%d) lost=%d spurious=%d | broadcasts=%d woke=%d stuck=%d | faults=%d health=%v commits=%d aborts=%d serial=%d\n",
		kind, produced.Load(), conserved, races, cancelRaces, cancels, lost, spurious,
		broadcasts, bwoken, bstuck,
		in.FiredTotal(), e.Health(), e.Stats.Commits.Load(), e.Stats.Aborts.Load(), e.Stats.SerialCommits.Load())
	if !drained {
		fmt.Printf("%-22s: STUCK in queue drain (consumed %d of %d produced)\n",
			kind, consumed.Load(), produced.Load())
		return exitStuck
	}
	if !kindOK {
		return exitInvariant
	}
	return exitOK
}

// runLaneChaos is the sem-layer lane-conservation probe: a 4-lane
// striped semaphore absorbs timed and cancelled waiters racing Post,
// PostN and PostAll while the injector stalls the post/park hook
// points underneath. Permits are conserved by construction — every
// Post/PostN permit and every PostAll hand-off must surface as exactly
// one successful wait or one banked permit, no matter how many
// timeout/cancel losers had to consume-and-forward along the way — and
// no waiter may remain parked once the soak drains.
func runLaneChaos(goroutines int, seed uint64, rate float64, dur time.Duration) int {
	s := sem.New(0)
	s.SetLanes(4) // force striping even on single-core hosts
	in := chaosRules(seed, rate)
	s.SetFault(in)
	in.Arm()
	defer in.Disarm()

	if goroutines < 4 {
		goroutines = 4
	}
	deadline := time.Now().Add(dur)
	var succ, timeouts, cancels atomic.Int64
	var posted, woken atomic.Int64

	// Waiter pool: timed and cancelled waits in equal measure, with
	// jittered budgets so losers and winners interleave on every lane.
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; running(deadline); i++ {
				if (g+i)%2 == 0 {
					d := time.Duration((i%5)+1) * 100 * time.Microsecond
					if s.WaitTimeout(d) {
						succ.Add(1)
					} else {
						timeouts.Add(1)
					}
				} else {
					ctx, cancel := context.WithCancel(context.Background())
					go func(after time.Duration) {
						time.Sleep(after)
						cancel()
					}(time.Duration(i%7) * 50 * time.Microsecond)
					if s.WaitCtx(ctx) {
						succ.Add(1)
					} else {
						cancels.Add(1)
					}
					cancel()
				}
			}
		}()
	}

	// Posters: singles, batches, and periodic PostAll storms, all racing
	// the losers above for the same lanes.
	var pwg sync.WaitGroup
	for p := 0; p < 2; p++ {
		p := p
		pwg.Add(1)
		go func() {
			defer pwg.Done()
			for i := 0; running(deadline); i++ {
				switch {
				case i%16 == p*8+3:
					woken.Add(int64(s.PostAll()))
				case i%4 == 3:
					s.PostN(3)
					posted.Add(3)
				default:
					s.Post()
					posted.Add(1)
				}
				if i%8 == 0 {
					time.Sleep(20 * time.Microsecond)
				}
			}
		}()
	}

	pwg.Wait()
	// Every wait in the pool is timed or cancellable, so once the posts
	// stop the pool drains on its own — a waiter still parked past the
	// grace period is stranded on a lane.
	if !awaitOrStuck(30*time.Second, wg.Wait) {
		fmt.Printf("%-22s: STUCK draining waiters (%d still parked)\n", "sem/lanes", s.Waiters())
		return exitStuck
	}
	banked := s.Value()
	conserved := posted.Load()+woken.Load() == succ.Load()+banked
	fmt.Printf("%-22s: lanes=%d posted=%d postall-woke=%d | waits=%d timeouts=%d cancels=%d banked=%d conserved=%v stranded=%d | faults=%d\n",
		"sem/lanes", s.Lanes(), posted.Load(), woken.Load(), succ.Load(),
		timeouts.Load(), cancels.Load(), banked, conserved, s.Waiters(), in.FiredTotal())
	if !conserved || s.Waiters() != 0 {
		return exitInvariant
	}
	return exitOK
}
