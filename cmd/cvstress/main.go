// Command cvstress validates the condition-variable implementations under
// sustained load. It has three modes:
//
//	-mode spurious   park waiters, notify exactly k of n, and verify that
//	                 exactly k wake (the TM condvar's no-spurious-wake-up
//	                 guarantee, Section 3.4); with -baseline it runs the
//	                 pthread-style condvar with injected spurious wake-ups
//	                 instead and reports how many fired.
//	-mode wakeup     hammer a bounded buffer with producers/consumers and
//	                 verify no item is lost or duplicated (lost-wake-up
//	                 detector) across all three systems.
//	-mode storm      drive heavy notify traffic from transactions that
//	                 abort with high probability, verifying that only
//	                 committed transactions ever wake a waiter.
//
//	-mode timed      hammer the timeout/notify race of WaitLockedTimeout:
//	                 every notify that claims a waiter must be observed by
//	                 a wait returning true, and no wait may report a
//	                 notification nobody sent.
//
// Exit status is non-zero if any anomaly is detected.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/facility"
	"repro/internal/pthreadcv"
	"repro/internal/stm"
	"repro/internal/syncx"
)

func main() {
	mode := flag.String("mode", "spurious", "spurious | wakeup | storm")
	goroutines := flag.Int("goroutines", 8, "concurrency level")
	iters := flag.Int("iters", 2000, "iterations / items per goroutine")
	baseline := flag.Bool("baseline", false, "spurious mode: use the pthread baseline with injection")
	flag.Parse()

	var failed bool
	switch *mode {
	case "spurious":
		failed = !runSpurious(*goroutines, *baseline)
	case "wakeup":
		failed = !runWakeup(*goroutines, *iters)
	case "storm":
		failed = !runStorm(*goroutines, *iters)
	case "timed":
		failed = !runTimed(*iters)
	default:
		fmt.Fprintf(os.Stderr, "cvstress: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	if failed {
		fmt.Println("RESULT: FAIL")
		os.Exit(1)
	}
	fmt.Println("RESULT: OK")
}

func runSpurious(n int, baseline bool) bool {
	if baseline {
		inj := pthreadcv.NewSpuriousInjector(1.0, 42)
		inj.MaxDelay = 200 * time.Microsecond
		var st pthreadcv.Stats
		c := pthreadcv.New(inj)
		c.SetStats(&st)
		var m syncx.Mutex
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				m.Lock()
				// cvlint:ignore waitloop harness measures raw spurious wake-ups, a loop would hide them
				c.Wait(&m)
				m.Unlock()
			}()
		}
		wg.Wait() // all return via injected spurious wake-ups
		fmt.Printf("baseline: %d waits, %d spurious wake-ups (expected: all)\n",
			n, st.SpuriousWakes.Load())
		return st.SpuriousWakes.Load() == int64(n)
	}

	e := stm.NewEngine(stm.Config{})
	cv := core.New(e, core.Options{})
	var m syncx.Mutex
	k := n / 2
	var woken atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Lock()
			// cvlint:ignore waitloop harness counts exact wake-ups, a predicate loop would mask extras
			cv.WaitLocked(&m)
			m.Unlock()
			woken.Add(1)
		}()
	}
	for cv.Len() != n {
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < k; i++ {
		cv.NotifyOne(nil)
	}
	time.Sleep(200 * time.Millisecond) // grace period for any spurious wake
	got := woken.Load()
	fmt.Printf("tmcondvar: parked %d, notified %d, woke %d (must equal)\n", n, k, got)
	ok := got == int64(k)
	cv.NotifyAll(nil)
	wg.Wait()
	return ok
}

func runWakeup(goroutines, iters int) bool {
	ok := true
	for _, kind := range facility.Kinds {
		tk := &facility.Toolkit{Kind: kind}
		if kind != facility.LockPthread {
			tk.Engine = stm.NewEngine(stm.Config{})
		}
		q := facility.NewQueue[int](tk, 16)
		producers := goroutines / 2
		if producers == 0 {
			producers = 1
		}
		consumers := producers
		total := producers * iters
		seen := make([]atomic.Int32, total)
		var consumed atomic.Int64
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			p := p
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					q.Put(p*iters + i)
				}
			}()
		}
		for c := 0; c < consumers; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					x, okGet := q.Get()
					if !okGet {
						return
					}
					seen[x].Add(1)
					consumed.Add(1)
				}
			}()
		}
		go func() {
			for consumed.Load() < int64(total) {
				time.Sleep(time.Millisecond)
			}
			q.Close()
		}()
		wg.Wait()
		bad := 0
		for i := range seen {
			if seen[i].Load() != 1 {
				bad++
			}
		}
		fmt.Printf("%-22s: %d items, %d lost/duplicated\n", kind, total, bad)
		if bad != 0 {
			ok = false
		}
	}
	return ok
}

func runTimed(iters int) bool {
	e := stm.NewEngine(stm.Config{})
	cv := core.New(e, core.Options{})
	var m syncx.Mutex
	lost, spurious := 0, 0
	for i := 0; i < iters; i++ {
		res := make(chan bool, 1)
		go func() {
			m.Lock()
			// cvlint:ignore waitloop harness probes the timeout/notify race one-shot by design
			res <- cv.WaitLockedTimeout(&m, time.Duration(i%5)*100*time.Microsecond)
		}()
		time.Sleep(time.Duration(i%7) * 50 * time.Microsecond)
		notified := cv.NotifyOne(nil)
		got := <-res
		m.Unlock()
		if notified && !got {
			lost++
		}
		if !notified && got {
			spurious++
		}
	}
	fmt.Printf("timed: %d races, %d lost wake-ups, %d spurious (must be 0/0)\n",
		iters, lost, spurious)
	return lost == 0 && spurious == 0
}

func runStorm(goroutines, iters int) bool {
	e := stm.NewEngine(stm.Config{})
	cv := core.New(e, core.Options{})
	var m syncx.Mutex
	var woken atomic.Int64
	var committedNotifies atomic.Int64
	var wg sync.WaitGroup

	waiters := goroutines
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Lock()
			// cvlint:ignore waitloop harness counts exact wake-ups, a predicate loop would mask extras
			cv.WaitLocked(&m)
			m.Unlock()
			woken.Add(1)
		}()
	}
	for cv.Len() != waiters {
		time.Sleep(time.Millisecond)
	}

	// Notify storm: most transactions cancel after notifying; only the
	// committed ones may wake anyone.
	errAbort := errors.New("storm abort")
	i := 0
	for committedNotifies.Load() < int64(waiters) {
		i++
		abort := i%7 != 0
		found := false
		err := e.Atomic(func(tx *stm.Tx) {
			found = cv.NotifyOne(tx)
			if abort {
				tx.Cancel(errAbort)
			}
		})
		if err == nil && found {
			committedNotifies.Add(1)
		}
	}
	wg.Wait()
	got := woken.Load()
	fmt.Printf("storm: %d committed notifies, %d wakes (must equal), %d aborted notify txns\n",
		committedNotifies.Load(), got, e.Stats.ExplicitAborts.Load())
	return got == committedNotifies.Load()
}
