// Command modelcheck exhaustively verifies the paper's correctness
// arguments over every interleaving of small thread mixes:
//
//   - the ABSTRACT model (Algorithm 2, the generic spin-flag condvar):
//     the five Lemma 2 invariants in every reachable state, Definition 1's
//     "WaitStep2 returns false" at every linearization, and the absence of
//     lost wake-ups in terminal states;
//   - the IMPLEMENTATION model (Algorithms 3–6, the transactional queue of
//     semaphores with commit-deferred SEMPOST): each semaphore receives at
//     most one post, no waiter wakes unposted, and no notified waiter is
//     lost.
//
// Usage:
//
//	modelcheck [-waiters N] [-notifyone N] [-notifyall N]
//
// With no flags, a standard battery of mixes runs. State counts grow
// combinatorially; mixes up to 5 threads verify in well under a second.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	waiters := flag.Int("waiters", 0, "waiter threads (0 = run the standard battery)")
	notifyOne := flag.Int("notifyone", 0, "NotifyOne threads")
	notifyAll := flag.Int("notifyall", 0, "NotifyAll threads")
	flag.Parse()

	if *waiters+*notifyOne+*notifyAll > 0 {
		runMix(*waiters, *notifyOne, *notifyAll)
		return
	}

	battery := [][3]int{
		{1, 1, 0}, {2, 1, 0}, {2, 2, 0}, {3, 2, 0},
		{1, 0, 1}, {2, 0, 1}, {3, 0, 1}, {2, 0, 2},
		{2, 1, 1}, {3, 1, 1},
	}
	for _, m := range battery {
		runMix(m[0], m[1], m[2])
	}
	fmt.Println("RESULT: all mixes verified")
}

func runMix(w, n1, na int) {
	var abs []core.Role
	var impl []core.ImplRole
	for i := 0; i < w; i++ {
		abs = append(abs, core.RoleWaiter)
		impl = append(impl, core.ImplWaiter)
	}
	for i := 0; i < n1; i++ {
		abs = append(abs, core.RoleNotifyOne)
		impl = append(impl, core.ImplNotifyOne)
	}
	for i := 0; i < na; i++ {
		abs = append(abs, core.RoleNotifyAll)
		impl = append(impl, core.ImplNotifyAll)
	}

	aRes, aErr := core.CheckModel(abs)
	iRes, iErr := core.CheckImplModel(impl)
	fmt.Printf("mix %dw/%dn1/%dnall: abstract %6d states, impl %6d states",
		w, n1, na, aRes.States, iRes.States)
	if aErr != nil || iErr != nil {
		fmt.Println("  VIOLATION")
		if aErr != nil {
			fmt.Fprintln(os.Stderr, "  abstract:", aErr)
		}
		if iErr != nil {
			fmt.Fprintln(os.Stderr, "  impl:", iErr)
		}
		os.Exit(1)
	}
	fmt.Println("  ok")
}
