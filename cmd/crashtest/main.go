// Command crashtest is the SIGKILL chaos driver for the black-box
// oracle harness: it builds the real cvstress binary, runs it in
// -mode blackbox with oracle persistence, kills it dead (SIGKILL, no
// cleanup) at a seeded random point under load, restarts it with
// -recover, and requires the recovery audit to come back clean — zero
// oracle divergences (modulo the documented checkpoint window, which the
// recovery pass tolerates and reports) and zero parked waiters after the
// fresh soak's drain. Rounds chain: each restart is the next
// incarnation of the same seed, so a multi-round run exercises
// kill→recover→kill→recover against accumulating state.
//
// Exit codes mirror cvstress: 0 clean, 1 setup error, and otherwise the
// failing child's code (2 divergence, 3 stuck).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"repro/internal/fault"
)

func main() {
	rounds := flag.Int("rounds", 3, "kill/recover rounds to run")
	seed := flag.Uint64("seed", 0xC4A05, "workload + fault seed handed to cvstress; also seeds the kill schedule")
	bin := flag.String("bin", "", "prebuilt cvstress binary (default: go build it)")
	stateDir := flag.String("state", "", "oracle state directory (default: a fresh temp dir)")
	goroutines := flag.Int("goroutines", 8, "cvstress concurrency level")
	faultrate := flag.Float64("faultrate", 0.1, "cvstress fault-injection rate")
	keep := flag.Bool("keep", false, "keep the state directory for inspection")
	flag.Parse()

	code, err := run(*rounds, *seed, *bin, *stateDir, *goroutines, *faultrate, *keep)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crashtest:", err)
		if code == 0 {
			code = 1
		}
	}
	if code == 0 {
		fmt.Println("RESULT: OK")
	} else {
		fmt.Printf("RESULT: FAIL (exit %d)\n", code)
	}
	os.Exit(code)
}

func run(rounds int, seed uint64, bin, stateDir string, goroutines int, faultrate float64, keep bool) (int, error) {
	if bin == "" {
		root, err := moduleRoot()
		if err != nil {
			return 1, err
		}
		tmp, err := os.MkdirTemp("", "crashtest-bin")
		if err != nil {
			return 1, err
		}
		defer os.RemoveAll(tmp)
		bin = filepath.Join(tmp, "cvstress")
		build := exec.Command("go", "build", "-o", bin, "./cmd/cvstress")
		build.Dir = root
		if out, err := build.CombinedOutput(); err != nil {
			return 1, fmt.Errorf("building cvstress: %v\n%s", err, out)
		}
	}
	if stateDir == "" {
		dir, err := os.MkdirTemp("", "crashtest-state")
		if err != nil {
			return 1, err
		}
		stateDir = dir
		if !keep {
			defer os.RemoveAll(dir)
		}
	}
	if keep {
		fmt.Printf("crashtest: state in %s\n", stateDir)
	}

	for r := 0; r < rounds; r++ {
		// The kill point is drawn deterministically from (seed, round):
		// the same crashtest invocation kills at the same offsets.
		killAfter := 400*time.Millisecond +
			time.Duration(fault.DeriveSeed(seed, uint64(r))%1600)*time.Millisecond
		fmt.Printf("round %d: soak, SIGKILL after %v under load\n", r, killAfter)

		// Kill phase: a long soak that never gets to finish. -recover
		// chains the incarnations (round 0 finds no state and starts
		// fresh).
		victim := exec.Command(bin, "-mode", "blackbox",
			"-seed", fmt.Sprint(seed), "-goroutines", fmt.Sprint(goroutines),
			"-faultrate", fmt.Sprint(faultrate), "-duration", "10m",
			"-state", stateDir, "-checkpoint", "50ms", "-recover")
		victim.Stdout, victim.Stderr = os.Stdout, os.Stderr
		if err := victim.Start(); err != nil {
			return 1, err
		}
		// Only kill once the run is demonstrably under load: the journal
		// must have grown past the recovery preamble.
		if err := awaitJournalGrowth(filepath.Join(stateDir, "journal.log"), 30*time.Second); err != nil {
			victim.Process.Kill()
			victim.Wait()
			return 1, fmt.Errorf("round %d: %v", r, err)
		}
		time.Sleep(killAfter)
		if err := victim.Process.Kill(); err != nil {
			return 1, fmt.Errorf("round %d: kill: %v", r, err)
		}
		victim.Wait()

		// Recovery phase: audit the carcass, then soak briefly as the
		// next incarnation and drain clean.
		rec := exec.Command(bin, "-mode", "blackbox",
			"-seed", fmt.Sprint(seed), "-goroutines", fmt.Sprint(goroutines),
			"-faultrate", fmt.Sprint(faultrate), "-duration", "1s",
			"-state", stateDir, "-checkpoint", "50ms", "-recover")
		rec.Stdout, rec.Stderr = os.Stdout, os.Stderr
		if err := rec.Run(); err != nil {
			if ee, ok := err.(*exec.ExitError); ok {
				return ee.ExitCode(), fmt.Errorf("round %d: recovery failed (exit %d)", r, ee.ExitCode())
			}
			return 1, fmt.Errorf("round %d: recovery: %v", r, err)
		}
		fmt.Printf("round %d: recovered clean\n", r)
	}
	return 0, nil
}

// awaitJournalGrowth waits until the oracle journal exists and keeps
// growing — proof the new incarnation truncated it and is journaling its
// own events, not just that the previous round's file is still there.
func awaitJournalGrowth(path string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var last int64 = -1
	grown := 0
	for time.Now().Before(deadline) {
		if fi, err := os.Stat(path); err == nil {
			if fi.Size() > last && last >= 0 {
				grown++
				if grown >= 2 {
					return nil
				}
			}
			last = fi.Size()
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("journal %s never grew (stress run not making progress?)", path)
}

// moduleRoot walks up from the working directory to the go.mod that
// defines this module, so crashtest can be run from any subdirectory.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory")
		}
		dir = parent
	}
}
