// Package repro is a from-scratch Go reproduction of "Transaction-Friendly
// Condition Variables" (Chao Wang, Yujie Liu, Michael Spear — SPAA 2014).
//
// The paper's contribution — a condition variable implemented as a
// transactional queue of per-thread semaphores, usable from locks,
// transactions, and unsynchronized code, with no spurious wake-ups — lives
// in internal/core. Its substrates (a software/simulated-hardware TM
// engine, counting semaphores, sync contexts) and its evaluation (eight
// PARSEC-style workloads under three synchronization systems) live in the
// other internal packages. See README.md for the tour, DESIGN.md for the
// system inventory, and EXPERIMENTS.md for paper-vs-measured results.
//
// The benchmarks in bench_test.go regenerate every table and figure in the
// paper's evaluation:
//
//	go test -bench=Fig1 -benchmem .     # Figure 1 (STM machine)
//	go test -bench=Fig2 -benchmem .     # Figure 2 (simulated HTM machine)
//	go test -bench=Fig3 .               # Figure 3 (geomean speedups)
//	go test -bench=Ablation .           # design-choice ablations
//	go run ./cmd/parsecbench            # the full sweep, formatted like the paper
//	go run ./cmd/table1                 # Table 1
package repro
